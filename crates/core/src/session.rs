//! The two-party PBS state machines.
//!
//! [`AliceSession`] and [`BobSession`] hold each party's per-group state and
//! exchange the messages defined in [`crate::messages`]. The [`crate::Pbs`]
//! driver wires them together in-process; callers with a real transport can
//! serialize the messages themselves and drive the same state machines (see
//! the `blockchain_relay` example).
//!
//! The round structure follows §2.2.2 / §2.4 / §3:
//!
//! * `AliceSession::start_round` — re-partitions every unverified group with
//!   a fresh hash function and emits one BCH sketch per group.
//! * `BobSession::handle_sketches` — decodes each sketch against his own
//!   parity bitmap and reports the differing bins (or a decoding failure,
//!   which makes him split the group three ways, §3.2).
//! * `AliceSession::apply_reports` — recovers one element per differing bin
//!   (Procedure 1), rejects fakes with the sub-universe check (Procedure 3),
//!   applies the recovered elements, and verifies the group checksum
//!   (§2.2.3).
//!
//! # Pipelined rounds
//!
//! [`AliceSession::start_rounds`] generalizes `start_round`: it emits the
//! sketches of `layers` *consecutive* protocol rounds in one batch, all
//! computed from Alice's current working sets. Because Bob's set never
//! changes, he can decode every layer independently; Alice then applies the
//! reports **in order**, and the later layers self-correct: an element
//! already recovered by an earlier layer sits on both sides of the per-bin
//! XOR, so a stale layer's bin yields `s = 0` (no-op) or the still-missing
//! residual element. A transport can therefore collapse what used to be
//! `layers` request-response round trips into one, at the price of the
//! speculative layers' bytes. With `layers = 1` the behavior (including
//! every split decision and report byte) is identical to the classic
//! one-round-per-trip protocol.
//!
//! The §3.2 split rule under pipelining: a session is split three ways only
//! when **every** layer of the batch reports a BCH decoding failure — one
//! successful layer supersedes the failed ones. Both state machines apply
//! the same rule, so they stay in lockstep without extra communication.

use crate::messages::{
    child_sessions, BinInfo, GroupReport, GroupReportBody, GroupSketch, RoundStatus, SessionId,
};
use crate::PbsConfig;
use analysis::OptimalParams;
use bch::BchCodec;
use std::collections::{HashMap, HashSet};
use xhash::{derive_seed, PartitionHasher, SetChecksum};

/// Salt labels for seed derivation, so the group partition, each round's bin
/// partition and each split partition use mutually independent hash functions.
const GROUP_SALT: u64 = 0x6_1201;
const ROUND_SALT: u64 = 0x2_0550;
const SPLIT_SALT: u64 = 0x3_5711;

/// Number of ways a group is split after a BCH decoding failure (§3.2
/// explains why a three-way split is preferred over a two-way split).
const SPLIT_WAYS: u64 = 3;

/// Largest parity-bitmap length handled with dense per-bin accumulators on
/// the decode paths of *both* parties (`n/8 + 8n` bytes of scratch); larger
/// `n` falls back to hash-map accumulation.
const DENSE_LIMIT: u64 = 1 << 22;

fn bin_seed(base: u64, session: SessionId, round: u32) -> u64 {
    derive_seed(derive_seed(base, session), ROUND_SALT + round as u64)
}

fn split_seed(base: u64, session: SessionId) -> u64 {
    derive_seed(derive_seed(base, session), SPLIT_SALT)
}

fn group_seed(base: u64) -> u64 {
    derive_seed(base, GROUP_SALT)
}

/// A membership constraint a recovered element must satisfy: under `hasher`
/// it must map to bin `expected`. The chain of constraints encodes the
/// element's group (and sub-group) path; checking it is the generalized
/// Procedure 3.
#[derive(Debug, Clone, Copy)]
struct Membership {
    hasher: PartitionHasher,
    expected: u64,
}

// ---------------------------------------------------------------------------
// Alice
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct AliceGroup {
    id: SessionId,
    /// Alice's current working set for this group: initially `A_i`, with the
    /// estimated differences of previous rounds applied (§2.4).
    elements: HashSet<u64>,
    /// Incrementally maintained checksum of `elements`.
    checksum: SetChecksum,
    /// `c(B_i)`, once Bob has sent it.
    bob_checksum: Option<u64>,
    /// Group / sub-group membership constraints (generalized Procedure 3).
    membership: Vec<Membership>,
    /// Bin-partition hash seeds of the sketch layers Alice sent in the
    /// current batch, in round order ([`AliceSession::start_rounds`]).
    pending_bin_seeds: Vec<u64>,
    /// How many of [`AliceGroup::pending_bin_seeds`] have been answered.
    /// Bob reports every layer in the order he received it, so the j-th
    /// report for a session answers the j-th pending layer.
    reports_consumed: usize,
    verified: bool,
}

impl AliceGroup {
    fn new(
        id: SessionId,
        elements: HashSet<u64>,
        membership: Vec<Membership>,
        universe_bits: u32,
    ) -> Self {
        let mut checksum = SetChecksum::new(universe_bits);
        for &e in &elements {
            checksum.add(e);
        }
        AliceGroup {
            id,
            elements,
            checksum,
            bob_checksum: None,
            membership,
            pending_bin_seeds: Vec::new(),
            reports_consumed: 0,
            verified: false,
        }
    }
}

/// Alice's side of the protocol: she wants to learn `A△B`.
#[derive(Debug)]
pub struct AliceSession {
    cfg: PbsConfig,
    params: OptimalParams,
    codec: BchCodec,
    base_seed: u64,
    round: u32,
    round_trips: u32,
    /// Layer depth of the last [`Self::start_rounds`] batch.
    last_depth: u32,
    /// `(decoded, failed)` per-group layer reports of the last
    /// [`Self::apply_reports`] batch; `None` before the first batch.
    last_layer_stats: Option<(u32, u32)>,
    groups: Vec<AliceGroup>,
    /// Elements whose membership Alice has toggled so far — once every group
    /// verifies, this is exactly `A△B`.
    recovered: HashSet<u64>,
    fakes_rejected: u64,
}

impl AliceSession {
    /// Create Alice's session state from her set.
    pub fn new(cfg: PbsConfig, params: OptimalParams, elements: &[u64], seed: u64) -> Self {
        let codec = BchCodec::new(params.m, params.t);
        let group_hasher = PartitionHasher::new(params.groups as u64, group_seed(seed));
        let mut buckets: Vec<HashSet<u64>> = vec![HashSet::new(); params.groups];
        for &e in elements {
            buckets[group_hasher.bin(e) as usize].insert(e);
        }
        let groups = buckets
            .into_iter()
            .enumerate()
            .map(|(i, elems)| {
                AliceGroup::new(
                    (i + 1) as SessionId,
                    elems,
                    vec![Membership {
                        hasher: group_hasher,
                        expected: i as u64,
                    }],
                    cfg.universe_bits,
                )
            })
            .collect();
        AliceSession {
            cfg,
            params,
            codec,
            base_seed: seed,
            round: 0,
            round_trips: 0,
            last_depth: 1,
            last_layer_stats: None,
            groups,
            recovered: HashSet::new(),
            fakes_rejected: 0,
        }
    }

    /// The current protocol round number (0 before the first
    /// [`Self::start_round`]; a pipelined batch advances it by its layer
    /// count).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Number of sketch batches emitted so far — with a request-response
    /// transport, the number of round trips spent on sketch/report
    /// exchanges. Equal to [`Self::round`] unless rounds were pipelined.
    pub fn round_trips(&self) -> u32 {
        self.round_trips
    }

    /// Number of sessions (groups and sub-groups) that have not verified yet.
    pub fn active_sessions(&self) -> usize {
        self.groups.iter().filter(|g| !g.verified).count()
    }

    /// `true` once every group pair's checksum has verified.
    pub fn all_verified(&self) -> bool {
        self.groups.iter().all(|g| g.verified)
    }

    /// Number of recovered elements rejected by the Procedure 3 check so far.
    pub fn fakes_rejected(&self) -> u64 {
        self.fakes_rejected
    }

    /// The set of elements Alice currently believes to be in `A△B`.
    pub fn recovered_so_far(&self) -> &HashSet<u64> {
        &self.recovered
    }

    /// Consume the session and return the recovered difference.
    pub fn into_recovered(self) -> Vec<u64> {
        self.recovered.into_iter().collect()
    }

    /// Begin a new round: re-partition every unverified group with a fresh
    /// hash function and produce the BCH sketches to send to Bob.
    /// Equivalent to [`Self::start_rounds`]`(1)`.
    pub fn start_round(&mut self) -> Vec<GroupSketch> {
        self.start_rounds(1)
    }

    /// Begin `layers` pipelined protocol rounds at once: for every
    /// unverified group, emit one sketch per round `self.round + 1 ..=
    /// self.round + layers`, each under that round's fresh bin-partition
    /// hash, all computed from the group's *current* working set (see the
    /// module docs on why applying the answers in order is sound). The
    /// batch is layer-major: all of round `r`'s sketches, then all of round
    /// `r+1`'s, and so on — the order Bob's reports must be applied in.
    ///
    /// Group × layer sketches are independent, so they are computed with
    /// [`protocol::par_map`]: worker threads when the `parallel` feature is
    /// on, a plain serial loop otherwise — identical output either way.
    pub fn start_rounds(&mut self, layers: u32) -> Vec<GroupSketch> {
        assert!(layers >= 1, "a sketch batch needs at least one layer");
        let base = self.round;
        self.round += layers;
        self.round_trips += 1;
        self.last_depth = layers;
        // Assign the batch's bin seeds first (mutates the groups), then
        // sketch over shared references so the map body is pure.
        for group in self.groups.iter_mut().filter(|g| !g.verified) {
            group.pending_bin_seeds = (1..=layers)
                .map(|layer| bin_seed(self.base_seed, group.id, base + layer))
                .collect();
            group.reports_consumed = 0;
        }
        let active: Vec<&AliceGroup> = self.groups.iter().filter(|g| !g.verified).collect();
        let jobs: Vec<(&AliceGroup, usize)> = (0..layers as usize)
            .flat_map(|layer| active.iter().map(move |g| (*g, layer)))
            .collect();
        let codec = &self.codec;
        let n = self.params.n as u64;
        let sketches = protocol::par_map(&jobs, |&(group, layer)| {
            let hasher = PartitionHasher::new(n, group.pending_bin_seeds[layer]);
            let mut sketch = codec.empty_sketch();
            let positions: Vec<u64> = group.elements.iter().map(|&e| hasher.position(e)).collect();
            sketch.add_batch(&positions, codec.field());
            sketch
        });
        jobs.iter()
            .zip(sketches)
            .map(|(&(group, layer), sketch)| GroupSketch {
                session: group.id,
                round: base + 1 + layer as u32,
                sketch,
                // Repeated on every layer while c(B_i) is unknown: the
                // first layer's report may be a decode failure, and the
                // checksum must not be lost with it.
                needs_checksum: group.bob_checksum.is_none(),
            })
            .collect()
    }

    /// Apply Bob's reports for the current batch: recover elements, reject
    /// fakes, verify checksums and split groups whose decoding failed.
    ///
    /// Reports must be passed in the order Bob produced them — the j-th
    /// report for a session answers the j-th layer of the last
    /// [`Self::start_rounds`] batch. A session is split three ways only
    /// when every one of its reports in the batch is a decoding failure
    /// (with unpipelined batches that is the classic §3.2 rule).
    pub fn apply_reports(&mut self, reports: &[GroupReport]) -> RoundStatus {
        let mut recovered_this_round = 0usize;
        let (mut layers_decoded, mut layers_failed) = (0u32, 0u32);
        // `false` until a session shows at least one successfully decoded
        // layer; sessions still `false` at the end of the batch are split.
        let mut any_decoded: HashMap<SessionId, bool> = HashMap::new();

        let mut index: HashMap<SessionId, usize> = HashMap::with_capacity(self.groups.len());
        for (i, g) in self.groups.iter().enumerate() {
            index.insert(g.id, i);
        }

        for report in reports {
            let Some(&gi) = index.get(&report.session) else {
                continue;
            };
            match &report.body {
                GroupReportBody::DecodeFailed => {
                    layers_failed += 1;
                    any_decoded.entry(report.session).or_insert(false);
                    // The failed layer still consumes its pending seed, so
                    // later layers of the session stay aligned.
                    let group = &mut self.groups[gi];
                    if group.reports_consumed < group.pending_bin_seeds.len() {
                        group.reports_consumed += 1;
                    }
                }
                GroupReportBody::Decoded { bins, checksum } => {
                    layers_decoded += 1;
                    any_decoded.insert(report.session, true);
                    recovered_this_round += self.apply_decoded(gi, bins, *checksum);
                }
            }
        }
        self.last_layer_stats = Some((layers_decoded, layers_failed));

        // Perform the three-way splits after the borrow of `self.groups` above.
        // Process from the highest index down so removals do not shift the
        // remaining indices.
        let mut splits: Vec<(usize, SessionId)> = any_decoded
            .iter()
            .filter(|&(_, &decoded)| !decoded)
            .map(|(&session, _)| (index[&session], session))
            .collect();
        splits.sort_by_key(|&(gi, _)| std::cmp::Reverse(gi));
        for (gi, session) in splits {
            self.split_group(gi, session);
        }

        RoundStatus {
            recovered_this_round,
            active_sessions: self.active_sessions(),
            all_verified: self.all_verified(),
            layers_decoded,
            layers_failed,
        }
    }

    /// Pick the layer depth for the *next* pipelined batch, bounded by
    /// `grant` (the depth the transport's handshake granted).
    ///
    /// Adaptive pipelining per §3.2's economics: a speculative layer is a
    /// cheap win while decodes succeed (it resolves the next round's
    /// retries inside the same trip) and pure waste while they fail (every
    /// layer of an overloaded group fails identically until the group
    /// splits). The controller therefore starts at the granted depth and
    /// resizes per trip from the previous trip's layer-verification rate:
    ///
    /// * every layer decoded → deepen toward the grant (double),
    /// * at least half the layers failed → back off toward 1 (halve),
    /// * mixed outcomes → hold the current depth.
    pub fn next_pipeline_depth(&self, grant: u32) -> u32 {
        let grant = grant.max(1);
        let Some((decoded, failed)) = self.last_layer_stats else {
            return grant;
        };
        let previous = self.last_depth.max(1);
        if failed == 0 {
            previous.saturating_mul(2).min(grant)
        } else if failed >= decoded {
            (previous / 2).max(1)
        } else {
            previous.min(grant)
        }
    }

    /// Handle a successfully decoded report for group index `gi`. Returns the
    /// number of elements applied.
    fn apply_decoded(&mut self, gi: usize, bins: &[BinInfo], checksum: Option<u64>) -> usize {
        let universe_mask = if self.cfg.universe_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.cfg.universe_bits) - 1
        };
        let group = &mut self.groups[gi];
        // This report answers the oldest unanswered layer of the last sketch
        // batch; a report beyond the layers actually sent is ignored.
        let Some(&layer_seed) = group.pending_bin_seeds.get(group.reports_consumed) else {
            return 0;
        };
        group.reports_consumed += 1;
        if let Some(c) = checksum {
            group.bob_checksum = Some(c);
        }
        if group.verified {
            // A speculative layer answering a group that an earlier layer
            // already verified: the working set equals B_i, so every bin
            // XOR cancels to zero — nothing to apply.
            return 0;
        }

        // One pass over the group's current elements: XOR sum per reported
        // bin. This mirrors the parity-bitset trick of Bob's sketch build
        // (`BobSession::compute_report`): for the bitmap lengths PBS uses, a
        // dense per-bin XOR accumulator plus a reported-bin membership bitset
        // replaces the hash map, so the per-element re-hash pass costs one
        // partition hash and two array probes, and reading the sums back is
        // O(bins). Bins outside `1..=n` (impossible from an honest decode,
        // reachable through the wire format) accumulate nothing, exactly as
        // the map did. Very large `n` keeps the map.
        let n = self.params.n as u64;
        let hasher = PartitionHasher::new(n, layer_seed);
        let alice_xor: Vec<u64> = if n <= DENSE_LIMIT {
            let mut xor_by_bin = vec![0u64; n as usize + 1];
            let mut wanted = vec![0u64; (n as usize + 1).div_ceil(64)];
            for b in bins {
                if b.position <= n {
                    wanted[b.position as usize / 64] |= 1u64 << (b.position % 64);
                }
            }
            for &e in &group.elements {
                let p = hasher.position(e) as usize;
                if wanted[p / 64] >> (p % 64) & 1 == 1 {
                    xor_by_bin[p] ^= e;
                }
            }
            bins.iter()
                .map(|b| xor_by_bin.get(b.position as usize).copied().unwrap_or(0))
                .collect()
        } else {
            let mut by_bin: HashMap<u64, u64> = HashMap::with_capacity(bins.len());
            for b in bins {
                by_bin.insert(b.position, 0);
            }
            for &e in &group.elements {
                let p = hasher.position(e);
                if let Some(slot) = by_bin.get_mut(&p) {
                    *slot ^= e;
                }
            }
            bins.iter()
                .map(|b| by_bin.get(&b.position).copied().unwrap_or(0))
                .collect()
        };

        let mut applied = 0usize;
        for (b, &xor_a) in bins.iter().zip(&alice_xor) {
            let s = xor_a ^ b.xor_sum;
            if s == 0 {
                // Procedure 1, case (I): the bin pair holds no recoverable
                // difference (an exception masked the parity mismatch).
                continue;
            }
            // The recovered value must be a valid universe element…
            if s > universe_mask {
                self.fakes_rejected += 1;
                continue;
            }
            // …must hash back to the reported bin (Procedure 3)…
            if hasher.position(s) != b.position {
                self.fakes_rejected += 1;
                continue;
            }
            // …and must belong to this group / sub-group path.
            if !group
                .membership
                .iter()
                .all(|m| m.hasher.bin(s) == m.expected)
            {
                self.fakes_rejected += 1;
                continue;
            }
            // Apply: toggle membership in the group's working set and in the
            // global recovered set.
            if group.elements.contains(&s) {
                group.elements.remove(&s);
                group.checksum.remove(s);
            } else {
                group.elements.insert(s);
                group.checksum.add(s);
            }
            if !self.recovered.insert(s) {
                self.recovered.remove(&s);
            }
            applied += 1;
        }

        // Checksum verification (Line 5 of Procedure 2).
        if let Some(expect) = group.bob_checksum {
            if group.checksum.value() == expect {
                group.verified = true;
            }
        }
        applied
    }

    /// Split group index `gi` into three sub-groups (§3.2).
    fn split_group(&mut self, gi: usize, session: SessionId) {
        let parent = self.groups.swap_remove(gi);
        let children = child_sessions(session);
        let hasher = PartitionHasher::new(SPLIT_WAYS, split_seed(self.base_seed, session));
        let mut parts: [HashSet<u64>; 3] = [HashSet::new(), HashSet::new(), HashSet::new()];
        for &e in &parent.elements {
            parts[hasher.bin(e) as usize].insert(e);
        }
        for (k, part) in parts.into_iter().enumerate() {
            let mut membership = parent.membership.clone();
            membership.push(Membership {
                hasher,
                expected: k as u64,
            });
            self.groups.push(AliceGroup::new(
                children[k],
                part,
                membership,
                self.cfg.universe_bits,
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Bob
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct BobGroup {
    elements: Vec<u64>,
    checksum: u64,
}

/// Bob's side of the protocol: he answers Alice's sketches.
#[derive(Debug)]
pub struct BobSession {
    cfg: PbsConfig,
    params: OptimalParams,
    codec: BchCodec,
    base_seed: u64,
    groups: HashMap<SessionId, BobGroup>,
    decode_failures: u32,
}

impl BobSession {
    /// Create Bob's session state from his set.
    ///
    /// Duplicate input elements are dropped (first occurrence wins), exactly
    /// as [`AliceSession::new`] does via its hash sets. This matters: a
    /// duplicated element would cancel out of the XOR parity bitmap but
    /// count twice in the *additive* group checksum, leaving a group that
    /// can never verify no matter how often it splits.
    pub fn new(cfg: PbsConfig, params: OptimalParams, elements: &[u64], seed: u64) -> Self {
        let codec = BchCodec::new(params.m, params.t);
        let group_hasher = PartitionHasher::new(params.groups as u64, group_seed(seed));
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); params.groups];
        let mut seen = HashSet::with_capacity(elements.len());
        for &e in elements {
            if seen.insert(e) {
                buckets[group_hasher.bin(e) as usize].push(e);
            }
        }
        let groups = buckets
            .into_iter()
            .enumerate()
            .map(|(i, elems)| {
                let checksum = xhash::element_checksum(cfg.universe_bits, elems.iter().copied());
                (
                    (i + 1) as SessionId,
                    BobGroup {
                        elements: elems,
                        checksum,
                    },
                )
            })
            .collect();
        BobSession {
            cfg,
            params,
            codec,
            base_seed: seed,
            groups,
            decode_failures: 0,
        }
    }

    /// Number of BCH decoding failures Bob has hit (each triggered a §3.2
    /// three-way split).
    pub fn decode_failures(&self) -> u32 {
        self.decode_failures
    }

    /// Number of group (and sub-group) sessions Bob currently tracks.
    pub fn session_count(&self) -> usize {
        self.groups.len()
    }

    /// Process one batch of sketches from Alice and produce the reports.
    ///
    /// The per-group work — rebuilding Bob's parity-bitmap sketch (through
    /// the batched [`bch::Sketch::add_batch`] kernel), combining with
    /// Alice's, and BCH-decoding the difference — depends only on that
    /// group's elements, so it runs through [`protocol::par_map`]: worker
    /// threads when the `parallel` feature is on, a serial loop otherwise,
    /// with identical reports either way. The mutations a decoding failure
    /// triggers (failure counter, §3.2 three-way split) are applied in a
    /// serial pass afterwards; a split only touches the failed session and
    /// its fresh children, never another session in the batch, so deferring
    /// it cannot change any other report. The deferral is also what makes
    /// pipelined batches sound: every layer of a session is decoded against
    /// the *unsplit* group, exactly as Alice built it.
    ///
    /// A session is split only when every one of its sketches in the batch
    /// failed to decode — the same rule [`AliceSession::apply_reports`]
    /// applies, so the two state machines agree on the split set. With one
    /// layer per batch this is the classic split-on-failure of §3.2.
    pub fn handle_sketches(&mut self, sketches: &[GroupSketch]) -> Vec<GroupReport> {
        let this = &*self;
        let reports = protocol::par_map(sketches, |msg| this.compute_report(msg));
        let mut all_failed: HashMap<SessionId, bool> = HashMap::new();
        for report in &reports {
            let failed = matches!(report.body, GroupReportBody::DecodeFailed);
            if failed {
                self.decode_failures += 1;
            }
            *all_failed.entry(report.session).or_insert(true) &= failed;
        }
        // Sessions are independent (fresh child ids per parent), so the
        // split order does not matter.
        for (&session, &failed) in &all_failed {
            if failed {
                self.split_group(session);
            }
        }
        reports
    }

    /// Pure per-group response computation (no session mutation).
    ///
    /// For the small parity bitmaps PBS uses (`n` bins, typically 2047,
    /// versus thousands of group elements), Bob's sketch is *not* built by
    /// running one syndrome ladder per element: adding a bin position twice
    /// XOR-cancels, so `sketch(positions multiset) = sketch(odd-parity
    /// bins)`. One pass over the elements maintains a dense parity bitset
    /// and per-bin XOR accumulator; the batched syndrome kernel then runs
    /// over at most `min(n, |group|)` odd bins — exactly the parity bitmap
    /// the scheme is named for. Very large `n` falls back to the
    /// positions-vector path.
    fn compute_report(&self, msg: &GroupSketch) -> GroupReport {
        // Unknown session: treat as empty (can only happen if Alice has a
        // group Bob's partition left empty — the decode still works).
        let (elements, checksum) = match self.groups.get(&msg.session) {
            Some(group) => (group.elements.as_slice(), group.checksum),
            None => (&[][..], 0),
        };
        let n = self.params.n as u64;
        let hasher = PartitionHasher::new(n, bin_seed(self.base_seed, msg.session, msg.round));

        let mut sketch = self.codec.empty_sketch();
        let decoded = if n <= DENSE_LIMIT {
            let mut xor_by_bin = vec![0u64; n as usize + 1];
            let mut parity = vec![0u64; (n as usize + 1).div_ceil(64)];
            for &e in elements {
                let p = hasher.position(e) as usize;
                xor_by_bin[p] ^= e;
                parity[p / 64] ^= 1u64 << (p % 64);
            }
            let mut odd_bins = Vec::new();
            for (w, &bits) in parity.iter().enumerate() {
                let mut b = bits;
                while b != 0 {
                    odd_bins.push((w * 64) as u64 + b.trailing_zeros() as u64);
                    b &= b - 1;
                }
            }
            sketch.add_batch(&odd_bins, self.codec.field());
            // Combine with Alice's sketch: the result is the sketch of the
            // positions where the two parity bitmaps differ.
            sketch.combine(&msg.sketch);
            self.codec.decode(&sketch).map(|positions| {
                positions
                    .into_iter()
                    .map(|p| BinInfo {
                        position: p,
                        xor_sum: xor_by_bin.get(p as usize).copied().unwrap_or(0),
                    })
                    .collect::<Vec<BinInfo>>()
            })
        } else {
            let positions: Vec<u64> = elements.iter().map(|&e| hasher.position(e)).collect();
            sketch.add_batch(&positions, self.codec.field());
            sketch.combine(&msg.sketch);
            self.codec.decode(&sketch).map(|decoded| {
                let mut wanted: HashMap<u64, u64> = decoded.iter().map(|&p| (p, 0)).collect();
                for (&e, &p) in elements.iter().zip(&positions) {
                    if let Some(slot) = wanted.get_mut(&p) {
                        *slot ^= e;
                    }
                }
                decoded
                    .into_iter()
                    .map(|p| BinInfo {
                        position: p,
                        xor_sum: wanted.get(&p).copied().unwrap_or(0),
                    })
                    .collect::<Vec<BinInfo>>()
            })
        };
        match decoded {
            Ok(bins) => GroupReport {
                session: msg.session,
                body: GroupReportBody::Decoded {
                    bins,
                    checksum: msg.needs_checksum.then_some(checksum),
                },
            },
            Err(_) => GroupReport {
                session: msg.session,
                body: GroupReportBody::DecodeFailed,
            },
        }
    }

    /// The seed's serial per-element decode path: one scalar
    /// [`bch::Sketch::add`] per element, hash-map XOR accumulation over
    /// every occupied bin, groups processed strictly in order on the calling
    /// thread. Produces exactly the same reports and session-state changes
    /// as [`BobSession::handle_sketches`]; kept as the baseline the
    /// `BENCH_decode_path.json` Bob-decode speedup is measured against and
    /// as ground truth for the parallel-vs-serial transcript tests.
    pub fn handle_sketches_reference(&mut self, sketches: &[GroupSketch]) -> Vec<GroupReport> {
        let mut out = Vec::with_capacity(sketches.len());
        for msg in sketches {
            let (elements, checksum) = match self.groups.get(&msg.session) {
                Some(group) => (group.elements.clone(), group.checksum),
                None => (Vec::new(), 0),
            };
            let n = self.params.n as u64;
            let hasher = PartitionHasher::new(n, bin_seed(self.base_seed, msg.session, msg.round));
            let mut sketch = self.codec.empty_sketch();
            let mut xor_by_bin: HashMap<u64, u64> = HashMap::new();
            for &e in &elements {
                let p = hasher.position(e);
                sketch.add(p, self.codec.field());
                *xor_by_bin.entry(p).or_insert(0) ^= e;
            }
            sketch.combine(&msg.sketch);
            let report = match self.codec.decode(&sketch) {
                Ok(positions) => GroupReport {
                    session: msg.session,
                    body: GroupReportBody::Decoded {
                        bins: positions
                            .into_iter()
                            .map(|p| BinInfo {
                                position: p,
                                xor_sum: xor_by_bin.get(&p).copied().unwrap_or(0),
                            })
                            .collect(),
                        checksum: msg.needs_checksum.then_some(checksum),
                    },
                },
                Err(_) => {
                    self.decode_failures += 1;
                    self.split_group(msg.session);
                    GroupReport {
                        session: msg.session,
                        body: GroupReportBody::DecodeFailed,
                    }
                }
            };
            out.push(report);
        }
        out
    }

    /// Split a group into three sub-groups after a decoding failure (§3.2).
    fn split_group(&mut self, session: SessionId) {
        let Some(parent) = self.groups.remove(&session) else {
            return;
        };
        let children = child_sessions(session);
        let hasher = PartitionHasher::new(SPLIT_WAYS, split_seed(self.base_seed, session));
        let mut parts: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for &e in &parent.elements {
            parts[hasher.bin(e) as usize].push(e);
        }
        for (k, part) in parts.into_iter().enumerate() {
            let checksum = xhash::element_checksum(self.cfg.universe_bits, part.iter().copied());
            self.groups.insert(
                children[k],
                BobGroup {
                    elements: part,
                    checksum,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pbs;

    fn params_for(d: usize) -> (PbsConfig, OptimalParams) {
        let cfg = PbsConfig::default();
        let params = Pbs::new(cfg).plan(d);
        (cfg, params)
    }

    #[test]
    fn single_round_happy_path() {
        let (cfg, params) = params_for(4);
        let alice: Vec<u64> = (1..=500).collect();
        let bob: Vec<u64> = (5..=500).collect();
        let mut a = AliceSession::new(cfg, params, &alice, 99);
        let mut b = BobSession::new(cfg, params, &bob, 99);
        let sketches = a.start_round();
        assert_eq!(sketches.len(), params.groups);
        let reports = b.handle_sketches(&sketches);
        let status = a.apply_reports(&reports);
        assert!(status.all_verified);
        assert_eq!(status.recovered_this_round, 4);
        let mut rec: Vec<u64> = a.into_recovered();
        rec.sort_unstable();
        assert_eq!(rec, vec![1, 2, 3, 4]);
    }

    #[test]
    fn bob_reports_decode_failure_when_capacity_exceeded() {
        // Parameterize for d = 5 but create 400 differences concentrated so
        // that some group certainly exceeds t.
        let (cfg, params) = params_for(5);
        let alice: Vec<u64> = (1..=1000).collect();
        let bob: Vec<u64> = (601..=1000).collect();
        let mut a = AliceSession::new(cfg, params, &alice, 7);
        let mut b = BobSession::new(cfg, params, &bob, 7);
        let sketches = a.start_round();
        let reports = b.handle_sketches(&sketches);
        assert!(b.decode_failures() > 0);
        assert!(reports
            .iter()
            .any(|r| matches!(r.body, GroupReportBody::DecodeFailed)));
        // Alice splits the failed sessions; the protocol stays consistent and
        // finishes over subsequent rounds.
        let mut status = a.apply_reports(&reports);
        let mut rounds = 1;
        while !status.all_verified && rounds < 20 {
            let sketches = a.start_round();
            let reports = b.handle_sketches(&sketches);
            status = a.apply_reports(&reports);
            rounds += 1;
        }
        assert!(
            status.all_verified,
            "did not converge after {rounds} rounds"
        );
        let mut rec = a.into_recovered();
        rec.sort_unstable();
        assert_eq!(rec, (1..=600).collect::<Vec<u64>>());
    }

    #[test]
    fn membership_constraints_follow_splits() {
        let (cfg, params) = params_for(5);
        let alice: Vec<u64> = (1..=50).collect();
        let mut a = AliceSession::new(cfg, params, &alice, 5);
        let before: usize = a.groups.len();
        // Force a split of the first session and check the children carry an
        // extra membership constraint.
        let first_id = a.groups[0].id;
        let parent_membership = a.groups[0].membership.len();
        a.split_group(0, first_id);
        assert_eq!(a.groups.len(), before + 2);
        for g in a.groups.iter().filter(|g| g.id > params.groups as u64) {
            assert_eq!(g.membership.len(), parent_membership + 1);
        }
    }

    #[test]
    fn batched_decode_matches_reference_transcripts() {
        // Drive two Bobs — the batched/parallel path and the seed's serial
        // reference — through a multi-round run with forced decode failures
        // and splits; every report batch and the final state must agree.
        let (cfg, params) = params_for(5);
        let alice: Vec<u64> = (1..=1000).collect();
        let bob: Vec<u64> = (301..=1000).collect();
        let mut a_fast = AliceSession::new(cfg, params, &alice, 21);
        let mut a_ref = AliceSession::new(cfg, params, &alice, 21);
        let mut b_fast = BobSession::new(cfg, params, &bob, 21);
        let mut b_ref = BobSession::new(cfg, params, &bob, 21);
        for round in 0..20 {
            let sketches_fast = a_fast.start_round();
            let sketches_ref = a_ref.start_round();
            assert_eq!(sketches_fast, sketches_ref, "sketch divergence r{round}");
            let reports_fast = b_fast.handle_sketches(&sketches_fast);
            let reports_ref = b_ref.handle_sketches_reference(&sketches_ref);
            assert_eq!(reports_fast, reports_ref, "report divergence r{round}");
            assert_eq!(b_fast.decode_failures(), b_ref.decode_failures());
            assert_eq!(b_fast.session_count(), b_ref.session_count());
            let status = a_fast.apply_reports(&reports_fast);
            a_ref.apply_reports(&reports_ref);
            if status.all_verified {
                break;
            }
        }
        assert!(a_fast.all_verified(), "run did not converge");
        let mut fast = a_fast.into_recovered();
        let mut reference = a_ref.into_recovered();
        fast.sort_unstable();
        reference.sort_unstable();
        assert_eq!(fast, (1..=300).collect::<Vec<u64>>());
        assert_eq!(fast, reference);
    }

    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v
    }

    /// Drive a pair of sessions to completion with `layers` pipelined
    /// rounds per trip; returns (recovered, round_trips, protocol_rounds).
    fn run_pipelined(
        cfg: PbsConfig,
        params: OptimalParams,
        alice: &[u64],
        bob: &[u64],
        seed: u64,
        layers: u32,
    ) -> (Vec<u64>, u32, u32) {
        let mut a = AliceSession::new(cfg, params, alice, seed);
        let mut b = BobSession::new(cfg, params, bob, seed);
        let mut trips = 0;
        while !a.all_verified() && trips < 40 {
            let sketches = a.start_rounds(layers);
            let reports = b.handle_sketches(&sketches);
            a.apply_reports(&reports);
            trips += 1;
        }
        assert!(a.all_verified(), "pipelined run did not converge");
        assert_eq!(a.round_trips(), trips);
        let rounds = a.round();
        (a.into_recovered(), trips, rounds)
    }

    #[test]
    fn pipelined_rounds_recover_exactly_in_fewer_round_trips() {
        // A properly parameterized large run: with ~80 groups, a handful
        // suffer exception bins in round 1 and the serial protocol pays a
        // full round trip for each retry round. Pipelining three layers per
        // trip resolves those retries inside trip 1.
        let (cfg, params) = params_for(400);
        let alice: Vec<u64> = (1..=20_000).collect();
        let bob: Vec<u64> = (401..=20_000).collect();
        let (serial, serial_trips, _) = run_pipelined(cfg, params, &alice, &bob, 77, 1);
        assert_eq!(sorted(serial.clone()), (1..=400).collect::<Vec<u64>>());
        let (pipelined, trips, rounds) = run_pipelined(cfg, params, &alice, &bob, 77, 3);
        assert_eq!(sorted(pipelined), sorted(serial));
        assert!(
            trips < serial_trips,
            "pipelined {trips} trips not fewer than serial {serial_trips}"
        );
        assert_eq!(rounds, trips * 3);
    }

    #[test]
    fn pipelined_rounds_survive_decode_failures_and_splits() {
        // Deliberately under-parameterized (d = 8 against 100 real
        // differences): every trip's layers all fail for the overloaded
        // groups, which must split exactly once per trip on both sides and
        // still converge to the exact difference.
        let (cfg, params) = params_for(8);
        let alice: Vec<u64> = (1..=2_000).collect();
        let bob: Vec<u64> = (101..=2_000).collect();
        let (pipelined, _, _) = run_pipelined(cfg, params, &alice, &bob, 77, 3);
        assert_eq!(sorted(pipelined), (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn pipelined_stale_layers_self_correct() {
        // Well-parameterized large run: layer 2 of each batch is computed
        // against Alice's pre-trip state, so every element recovered by
        // layer 1 re-appears in layer 2's reports — and must cancel to
        // s = 0 instead of being toggled back out.
        let (cfg, params) = params_for(60);
        let alice: Vec<u64> = (1..=5_000).collect();
        let bob: Vec<u64> = (61..=5_000).collect();
        let (recovered, trips, _) = run_pipelined(cfg, params, &alice, &bob, 9, 2);
        assert_eq!(sorted(recovered), (1..=60).collect::<Vec<u64>>());
        assert!(trips <= 2, "expected ≤ 2 trips, took {trips}");
    }

    #[test]
    fn single_layer_pipelining_matches_classic_rounds() {
        // start_rounds(1) must be byte-identical to the classic protocol,
        // split decisions included.
        let (cfg, params) = params_for(5);
        let alice: Vec<u64> = (1..=1_500).collect();
        let bob: Vec<u64> = (201..=1_500).collect();
        let mut a1 = AliceSession::new(cfg, params, &alice, 13);
        let mut b1 = BobSession::new(cfg, params, &bob, 13);
        let mut a2 = AliceSession::new(cfg, params, &alice, 13);
        let mut b2 = BobSession::new(cfg, params, &bob, 13);
        for round in 0..25 {
            let s1 = a1.start_round();
            let s2 = a2.start_rounds(1);
            assert_eq!(s1, s2, "sketch divergence round {round}");
            let r1 = b1.handle_sketches(&s1);
            let r2 = b2.handle_sketches(&s2);
            assert_eq!(r1, r2, "report divergence round {round}");
            let st1 = a1.apply_reports(&r1);
            let st2 = a2.apply_reports(&r2);
            assert_eq!(st1, st2);
            if st1.all_verified {
                break;
            }
        }
        assert!(a1.all_verified());
        assert_eq!(sorted(a1.into_recovered()), sorted(a2.into_recovered()));
    }

    #[test]
    fn adaptive_depth_follows_the_layer_verification_rate() {
        // Before any trip the controller starts at the negotiated grant.
        let (cfg, params) = params_for(4);
        let alice: Vec<u64> = (1..=500).collect();
        let bob: Vec<u64> = (5..=500).collect();
        let mut a = AliceSession::new(cfg, params, &alice, 99);
        let mut b = BobSession::new(cfg, params, &bob, 99);
        assert_eq!(a.next_pipeline_depth(4), 4);
        assert_eq!(a.next_pipeline_depth(0), 1, "grant is clamped to >= 1");

        // Well-parameterized: every layer decodes, so depth holds at the
        // grant (and would deepen toward a larger one).
        let sketches = a.start_rounds(2);
        let reports = b.handle_sketches(&sketches);
        let status = a.apply_reports(&reports);
        assert!(status.layers_failed == 0 && status.layers_decoded > 0);
        assert_eq!(a.next_pipeline_depth(4), 4);
        assert_eq!(a.next_pipeline_depth(2), 2);

        // Under-parameterized: every layer of every group fails, so the
        // depth halves toward 1 trip after trip.
        let (cfg, params) = params_for(1);
        let alice: Vec<u64> = (1..=2_000).collect();
        let bob: Vec<u64> = (201..=2_000).collect();
        let mut a = AliceSession::new(cfg, params, &alice, 5);
        let mut b = BobSession::new(cfg, params, &bob, 5);
        let mut depth = a.next_pipeline_depth(4);
        assert_eq!(depth, 4);
        let mut seen = vec![depth];
        for _ in 0..2 {
            let sketches = a.start_rounds(depth);
            let reports = b.handle_sketches(&sketches);
            let status = a.apply_reports(&reports);
            assert!(status.layers_failed >= status.layers_decoded);
            depth = a.next_pipeline_depth(4);
            seen.push(depth);
        }
        assert_eq!(seen, vec![4, 2, 1], "mostly-failed trips back off to 1");
    }

    #[test]
    fn empty_sets_verify_immediately() {
        let (cfg, params) = params_for(1);
        let mut a = AliceSession::new(cfg, params, &[], 3);
        let mut b = BobSession::new(cfg, params, &[], 3);
        let sketches = a.start_round();
        let reports = b.handle_sketches(&sketches);
        let status = a.apply_reports(&reports);
        assert!(status.all_verified);
        assert_eq!(status.recovered_this_round, 0);
    }
}
