//! Compact binary encoding of the PBS protocol messages.
//!
//! The in-process driver never needs to serialize anything, but callers that
//! ship [`GroupSketch`]/[`GroupReport`] batches over a real transport (see the
//! `blockchain_relay` example for the state-machine side) need a wire format.
//! The encoding here is deliberately simple and self-describing per batch:
//! little-endian fixed-width integers, length-prefixed vectors, and syndrome
//! words packed to ⌈m/8⌉ bytes.
//!
//! Note that the *accounting* used in the experiments charges the
//! information-theoretic message sizes of Formula (1) (e.g. `log n` bits per
//! position), matching how the paper counts communication; this byte format
//! adds the framing a real implementation would pay (a few bytes per message).

use crate::messages::{BinInfo, GroupReport, GroupReportBody, GroupSketch};
use bch::Sketch;

/// Errors produced when decoding a wire buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the declared content.
    Truncated,
    /// A tag byte had an unknown value.
    BadTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire buffer truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#x}"),
        }
    }
}

impl std::error::Error for WireError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Clamp a wire-declared element count before it is used as a `Vec`
/// pre-allocation: a record of the given kind cannot be smaller than
/// `min_record_bytes`, so a hostile count beyond `remaining /
/// min_record_bytes` would fail with [`WireError::Truncated`] anyway — by
/// capping the reservation first, it fails *before* the allocator is asked
/// for gigabytes.
fn clamp_alloc(count: usize, remaining: usize, min_record_bytes: usize) -> usize {
    count.min(remaining / min_record_bytes)
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode a batch of sketches (one Alice → Bob round) into bytes.
///
/// `m` is the field degree (`log₂(n+1)`); it determines how syndrome words
/// are packed.
pub fn encode_sketches(batch: &[GroupSketch], m: u32) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, batch.len() as u32);
    out.push(m as u8);
    for msg in batch {
        put_u64(&mut out, msg.session);
        put_u32(&mut out, msg.round);
        out.push(u8::from(msg.needs_checksum));
        let bytes = msg.sketch.to_bytes(m);
        put_u16(&mut out, msg.sketch.capacity() as u16);
        out.extend_from_slice(&bytes);
    }
    out
}

/// Decode a batch of sketches produced by [`encode_sketches`].
pub fn decode_sketches(buf: &[u8]) -> Result<Vec<GroupSketch>, WireError> {
    decode_sketches_with_m(buf).map(|(_, batch)| batch)
}

/// Decode a sketch batch and also return the field degree `m` it was packed
/// with — transports that must echo or validate `m` (the framed protocol's
/// `Sketches` frame) get it from the decoder itself instead of re-deriving
/// the payload layout.
pub fn decode_sketches_with_m(buf: &[u8]) -> Result<(u32, Vec<GroupSketch>), WireError> {
    let mut r = Reader::new(buf);
    let count = r.u32()? as usize;
    let m = r.u8()? as u32;
    let width = m.div_ceil(8) as usize;
    // Fixed header per sketch: session + round + checksum flag + capacity.
    let mut out = Vec::with_capacity(clamp_alloc(count, r.remaining(), 8 + 4 + 1 + 2));
    for _ in 0..count {
        let session = r.u64()?;
        let round = r.u32()?;
        let needs_checksum = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(WireError::BadTag(t)),
        };
        let t = r.u16()? as usize;
        let raw = r.take(t * width)?;
        let sketch = Sketch::from_bytes(raw, m).ok_or(WireError::Truncated)?;
        out.push(GroupSketch {
            session,
            round,
            sketch,
            needs_checksum,
        });
    }
    if r.done() {
        Ok((m, out))
    } else {
        Err(WireError::Truncated)
    }
}

const TAG_DECODED: u8 = 1;
const TAG_DECODED_WITH_CHECKSUM: u8 = 2;
const TAG_FAILED: u8 = 3;

/// Encode a batch of reports (one Bob → Alice round) into bytes.
pub fn encode_reports(batch: &[GroupReport]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, batch.len() as u32);
    for msg in batch {
        put_u64(&mut out, msg.session);
        match &msg.body {
            GroupReportBody::DecodeFailed => out.push(TAG_FAILED),
            GroupReportBody::Decoded { bins, checksum } => {
                match checksum {
                    Some(c) => {
                        out.push(TAG_DECODED_WITH_CHECKSUM);
                        put_u64(&mut out, *c);
                    }
                    None => out.push(TAG_DECODED),
                }
                put_u32(&mut out, bins.len() as u32);
                for b in bins {
                    put_u32(&mut out, b.position as u32);
                    put_u64(&mut out, b.xor_sum);
                }
            }
        }
    }
    out
}

/// Decode a batch of reports produced by [`encode_reports`].
pub fn decode_reports(buf: &[u8]) -> Result<Vec<GroupReport>, WireError> {
    let mut r = Reader::new(buf);
    let count = r.u32()? as usize;
    // Smallest report: session + failure tag.
    let mut out = Vec::with_capacity(clamp_alloc(count, r.remaining(), 8 + 1));
    for _ in 0..count {
        let session = r.u64()?;
        let tag = r.u8()?;
        let body = match tag {
            TAG_FAILED => GroupReportBody::DecodeFailed,
            TAG_DECODED | TAG_DECODED_WITH_CHECKSUM => {
                let checksum = if tag == TAG_DECODED_WITH_CHECKSUM {
                    Some(r.u64()?)
                } else {
                    None
                };
                let bins_len = r.u32()? as usize;
                // Each bin is a position word plus an XOR sum.
                let mut bins = Vec::with_capacity(clamp_alloc(bins_len, r.remaining(), 4 + 8));
                for _ in 0..bins_len {
                    let position = r.u32()? as u64;
                    let xor_sum = r.u64()?;
                    bins.push(BinInfo { position, xor_sum });
                }
                GroupReportBody::Decoded { bins, checksum }
            }
            t => return Err(WireError::BadTag(t)),
        };
        out.push(GroupReport { session, body });
    }
    if r.done() {
        Ok(out)
    } else {
        Err(WireError::Truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AliceSession, BobSession, Pbs, PbsConfig};

    #[test]
    fn sketch_batch_roundtrip() {
        let cfg = PbsConfig::default();
        let params = Pbs::new(cfg).plan(10);
        let alice: Vec<u64> = (1..=2_000).collect();
        let mut session = AliceSession::new(cfg, params, &alice, 3);
        let batch = session.start_round();
        let bytes = encode_sketches(&batch, params.m);
        let back = decode_sketches(&bytes).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn report_batch_roundtrip() {
        let cfg = PbsConfig::default();
        let params = Pbs::new(cfg).plan(10);
        let alice: Vec<u64> = (1..=2_000).collect();
        let bob: Vec<u64> = (11..=2_005).collect();
        let mut a = AliceSession::new(cfg, params, &alice, 3);
        let mut b = BobSession::new(cfg, params, &bob, 3);
        let sketches = a.start_round();
        let reports = b.handle_sketches(&sketches);
        let bytes = encode_reports(&reports);
        let back = decode_reports(&bytes).unwrap();
        assert_eq!(back, reports);
    }

    #[test]
    fn full_protocol_over_the_wire_format() {
        let cfg = PbsConfig::default();
        let params = Pbs::new(cfg).plan(8);
        let alice: Vec<u64> = (1..=3_000).collect();
        let bob: Vec<u64> = (9..=3_000).collect();
        let mut a = AliceSession::new(cfg, params, &alice, 9);
        let mut b = BobSession::new(cfg, params, &bob, 9);
        let mut rounds = 0;
        loop {
            rounds += 1;
            let sketch_bytes = encode_sketches(&a.start_round(), params.m);
            let sketches = decode_sketches(&sketch_bytes).unwrap();
            let report_bytes = encode_reports(&b.handle_sketches(&sketches));
            let reports = decode_reports(&report_bytes).unwrap();
            let status = a.apply_reports(&reports);
            if status.all_verified || rounds > 10 {
                break;
            }
        }
        assert!(a.all_verified());
        let mut rec = a.into_recovered();
        rec.sort_unstable();
        assert_eq!(rec, (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn corrupted_buffers_are_rejected() {
        let cfg = PbsConfig::default();
        let params = Pbs::new(cfg).plan(5);
        let alice: Vec<u64> = (1..=500).collect();
        let mut session = AliceSession::new(cfg, params, &alice, 1);
        let mut bytes = encode_sketches(&session.start_round(), params.m);
        bytes.truncate(bytes.len() - 3);
        assert_eq!(decode_sketches(&bytes), Err(WireError::Truncated));
        assert_eq!(decode_reports(&[9, 0, 0, 0]), Err(WireError::Truncated));
        // Bad tag byte inside a report.
        let bad = {
            let mut v = Vec::new();
            put_u32(&mut v, 1);
            put_u64(&mut v, 7);
            v.push(0xEE);
            v
        };
        assert_eq!(decode_reports(&bad), Err(WireError::BadTag(0xEE)));
    }
}
