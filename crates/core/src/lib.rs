//! Parity Bitmap Sketch (PBS) set reconciliation — the paper's core scheme.
//!
//! PBS lets two hosts, Alice (set `A`) and Bob (set `B`), discover the
//! difference `A△B` with `O(d)` computation and roughly twice the
//! information-theoretic minimum communication (`d·log|U|` bits):
//!
//! 1. both sets are hash-partitioned into `g = ⌈d/δ⌉` *groups* (§3) — each
//!    group pair then has about δ = 5 distinct elements and is reconciled
//!    independently ("piecewise reconciliability"),
//! 2. each group is hash-partitioned into `n` *bins*; the bins' parities form
//!    an `n`-bit parity bitmap, of which Alice sends only a `t·log₂(n+1)`-bit
//!    BCH syndrome sketch (§2),
//! 3. Bob decodes the sketch against his own bitmap, locating the bins whose
//!    parities differ, and returns those positions with per-bin XOR sums and
//!    a group checksum,
//! 4. Alice recovers one distinct element per differing bin (Procedure 1),
//!    discards fake elements with the sub-universe check (Procedure 3), and
//!    verifies the group checksum (§2.2.3); groups that fail verification run
//!    another round with a fresh hash function (§2.4), and groups whose BCH
//!    decoding fails are split three-way (§3.2).
//!
//! The crate exposes two levels of API:
//!
//! * [`Pbs`] — a one-call driver ([`Pbs::reconcile`] /
//!   [`Pbs::reconcile_with_known_d`]) that runs the whole multi-round
//!   protocol in-process, with full communication/timing accounting. It also
//!   implements [`protocol::Reconciler`] so the experiment harness can treat
//!   it like any baseline.
//! * [`AliceSession`] / [`BobSession`] plus the message types in
//!   [`messages`] — an explicit two-party state machine for callers that
//!   want to ship the messages over a real transport (see the
//!   `blockchain_relay` example).
//!
//! # Example
//!
//! ```
//! use pbs_core::{Pbs, PbsConfig};
//!
//! let alice: Vec<u64> = (1..=1000).collect();
//! let bob: Vec<u64> = (6..=1000).collect();
//! let pbs = Pbs::new(PbsConfig::default());
//! let report = pbs.reconcile_with_known_d(&alice, &bob, 5, 42);
//! assert!(report.outcome.claimed_success);
//! let mut diff = report.outcome.recovered.clone();
//! diff.sort_unstable();
//! assert_eq!(diff, vec![1, 2, 3, 4, 5]);
//! ```

#![warn(missing_docs)]

pub mod messages;
mod session;
pub mod wire;

pub use messages::RoundStatus;
pub use session::{AliceSession, BobSession};

use analysis::{optimize_parameters, OptimalParams, DEFAULT_DELTA, DEFAULT_TARGET_ROUNDS};
use estimator::{Estimator, TowEstimator};
use protocol::{CommStats, Direction, ReconcileOutcome, Reconciler, TimingStats, Transcript};
use std::time::Instant;

/// Salt used to derive the cardinality-estimator seed from the protocol
/// seed, so the estimator's hash functions are independent of every
/// partition hash. Shared with the networked client/server (`pbs_net`),
/// which must derive the same estimator from the handshake seed.
pub const ESTIMATOR_SEED_SALT: u64 = 0xE57;

/// Configuration of the PBS scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PbsConfig {
    /// Bit length `log|U|` of an element signature (32 in the paper's main
    /// evaluation).
    pub universe_bits: u32,
    /// Average number of distinct elements per group, δ (the paper fixes 5).
    pub delta: usize,
    /// Target number of rounds `r` used by the parameter optimizer (§5.2
    /// identifies 3 as the sweet spot).
    pub target_rounds: u32,
    /// Target overall success probability `p0` (e.g. 0.99 or 239/240).
    pub target_success: f64,
    /// Hard cap on the number of rounds actually executed. The §8 evaluation
    /// allows PBS at most `target_rounds` rounds; set a larger value (or
    /// [`u32::MAX`]) to let every group run to completion as in §J.1.
    pub max_rounds: u32,
    /// Number of Tug-of-War sketches used when `d` must be estimated.
    pub estimator_sketches: usize,
}

impl Default for PbsConfig {
    fn default() -> Self {
        PbsConfig {
            universe_bits: 32,
            delta: DEFAULT_DELTA,
            target_rounds: DEFAULT_TARGET_ROUNDS,
            target_success: 0.99,
            max_rounds: DEFAULT_TARGET_ROUNDS,
            estimator_sketches: estimator::DEFAULT_SKETCH_COUNT,
        }
    }
}

impl PbsConfig {
    /// The paper's default configuration (32-bit universe, δ = 5, r = 3,
    /// p0 = 0.99, at most 3 rounds).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Same configuration but letting every group pair run as many rounds as
    /// it needs (used for the §J.1 round-count experiment).
    pub fn unlimited_rounds(mut self) -> Self {
        self.max_rounds = u32::MAX;
        self
    }

    /// Set the target success probability.
    pub fn with_target_success(mut self, p0: f64) -> Self {
        self.target_success = p0;
        self
    }

    /// Set δ, the average number of distinct elements per group (§J.2 sweeps
    /// this knob).
    pub fn with_delta(mut self, delta: usize) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        self.delta = delta;
        self
    }

    /// Set the element signature width `log|U|`.
    pub fn with_universe_bits(mut self, bits: u32) -> Self {
        assert!((8..=64).contains(&bits), "universe_bits must be in 8..=64");
        self.universe_bits = bits;
        self
    }
}

/// Detailed result of a PBS reconciliation run.
#[derive(Debug, Clone)]
pub struct PbsReport {
    /// The generic outcome (recovered difference, success flag, comm, timing).
    pub outcome: ReconcileOutcome,
    /// The `(n, t)` parameters the run used.
    pub params: OptimalParams,
    /// The difference cardinality the parameters were derived from (either
    /// the caller-supplied `d` or the γ-inflated ToW estimate).
    pub parameterized_d: usize,
    /// The raw ToW estimate `d̂`, when the estimator was used.
    pub estimated_d: Option<f64>,
    /// Communication spent on the cardinality estimator, in bits. Reported
    /// separately because the paper excludes it from every scheme's
    /// communication overhead (§6.2).
    pub estimator_bits: u64,
    /// Number of group pairs.
    pub groups: usize,
    /// Number of distinct elements recovered in each executed round.
    pub per_round_recovered: Vec<usize>,
    /// Number of BCH decoding failures (groups that had to be split 3-way).
    pub decode_failures: u32,
    /// Number of recovered elements rejected by the Procedure 3 sub-universe
    /// check (detected type (II) fakes).
    pub fakes_rejected: u64,
}

/// The PBS reconciliation driver.
#[derive(Debug, Clone, Default)]
pub struct Pbs {
    config: PbsConfig,
}

impl Pbs {
    /// Create a driver with an explicit configuration.
    pub fn new(config: PbsConfig) -> Self {
        Pbs { config }
    }

    /// Create a driver with the paper's default configuration.
    pub fn paper_default() -> Self {
        Pbs::new(PbsConfig::paper_default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &PbsConfig {
        &self.config
    }

    /// Derive the optimal `(n, t)` parameters for a difference of `d`
    /// elements under this configuration (§5.1). Falls back to the largest
    /// grid cell if no candidate meets the target (which only happens for
    /// extreme targets).
    pub fn plan(&self, d: usize) -> OptimalParams {
        let cfg = &self.config;
        optimize_parameters(d.max(1), cfg.delta, cfg.target_rounds, cfg.target_success)
            .unwrap_or_else(|_| OptimalParams {
                n: 2047,
                m: 11,
                t: 4 * cfg.delta,
                groups: analysis::group_count(d, cfg.delta),
                lower_bound: 0.0,
                objective_bits: (5 * cfg.delta) as f64 * 11.0,
            })
    }

    /// Reconcile when the difference cardinality `d` is known a priori
    /// (the §2/§3 presentation assumes this).
    pub fn reconcile_with_known_d(
        &self,
        alice: &[u64],
        bob: &[u64],
        d: usize,
        seed: u64,
    ) -> PbsReport {
        self.run(alice, bob, d.max(1), None, 0, seed)
    }

    /// Reconcile with `d` unknown: first run the ToW estimator (§6), inflate
    /// the estimate by γ = 1.38, then run PBS with the derived parameters.
    pub fn reconcile(&self, alice: &[u64], bob: &[u64], seed: u64) -> PbsReport {
        let cfg = &self.config;
        let est_seed = xhash::derive_seed(seed, ESTIMATOR_SEED_SALT);
        let mut ea = TowEstimator::new(cfg.estimator_sketches, est_seed);
        let mut eb = TowEstimator::new(cfg.estimator_sketches, est_seed);
        for &x in alice {
            ea.insert(x);
        }
        for &x in bob {
            eb.insert(x);
        }
        let d_hat = ea.estimate(&eb);
        let d_param = estimator::inflate_estimate(d_hat);
        // Alice sends her sketches; Bob returns the estimate (one word).
        let estimator_bits = ea.wire_bits() + u64::from(cfg.universe_bits);
        self.run(alice, bob, d_param, Some(d_hat), estimator_bits, seed)
    }

    fn run(
        &self,
        alice: &[u64],
        bob: &[u64],
        d_param: usize,
        estimated_d: Option<f64>,
        estimator_bits: u64,
        seed: u64,
    ) -> PbsReport {
        let cfg = self.config;
        let params = self.plan(d_param);
        let mut transcript = Transcript::new();

        // ---- Encoding phase: both parties group-partition their sets and
        // build the first-round sketches. ----
        let encode_start = Instant::now();
        let mut alice_session = AliceSession::new(cfg, params, alice, seed);
        let mut bob_session = BobSession::new(cfg, params, bob, seed);
        let first_sketches = alice_session.start_round();
        let encode = encode_start.elapsed();

        // ---- Decoding phase: exchange messages round by round. ----
        let decode_start = Instant::now();
        let mut per_round_recovered = Vec::new();
        let mut rounds_executed = 0u32;
        let mut sketches = first_sketches;
        loop {
            rounds_executed += 1;
            for msg in &sketches {
                transcript.send_bits(Direction::AliceToBob, "bch-sketch", msg.wire_bits(params.m));
            }
            let reports = bob_session.handle_sketches(&sketches);
            for msg in &reports {
                transcript.send_bits(
                    Direction::BobToAlice,
                    "bin-report",
                    msg.wire_bits(params.m, cfg.universe_bits),
                );
            }
            let status = alice_session.apply_reports(&reports);
            per_round_recovered.push(status.recovered_this_round);

            if status.all_verified {
                break;
            }
            if rounds_executed >= cfg.max_rounds {
                break;
            }
            transcript.next_round();
            sketches = alice_session.start_round();
        }
        let decode = decode_start.elapsed();

        let claimed_success = alice_session.all_verified();
        let fakes_rejected = alice_session.fakes_rejected();
        let recovered = alice_session.into_recovered();
        let comm: CommStats = transcript.stats();
        PbsReport {
            outcome: ReconcileOutcome {
                recovered,
                claimed_success,
                comm,
                timing: TimingStats { encode, decode },
                rounds: rounds_executed,
            },
            params,
            parameterized_d: d_param,
            estimated_d,
            estimator_bits,
            groups: params.groups,
            per_round_recovered,
            decode_failures: bob_session.decode_failures(),
            fakes_rejected,
        }
    }
}

impl Reconciler for Pbs {
    fn name(&self) -> &'static str {
        "PBS"
    }

    fn reconcile(&self, a: &[u64], b: &[u64], seed: u64) -> ReconcileOutcome {
        let mut report = Pbs::reconcile(self, a, b, seed);
        // Fold the Procedure-3 statistics into the generic outcome by leaving
        // them in the report; the trait only needs the outcome.
        report.outcome.claimed_success &= true;
        report.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::symmetric_difference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_pair(n: usize, d: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = HashSet::new();
        while set.len() < n {
            set.insert((rng.random::<u64>() & 0xFFFF_FFFF).max(1));
        }
        // Sort before slicing: `HashSet` iteration order is per-process
        // random, and letting it pick *which* elements form the difference
        // makes multi-seed statistical tests flake rarely.
        let mut a: Vec<u64> = set.into_iter().collect();
        a.sort_unstable();
        let b = a[..n - d].to_vec();
        (a, b)
    }

    #[test]
    fn reconciles_small_known_difference() {
        let (a, b) = random_pair(2_000, 5, 1);
        let report = Pbs::paper_default().reconcile_with_known_d(&a, &b, 5, 7);
        assert!(report.outcome.claimed_success);
        assert!(report.outcome.matches(&symmetric_difference(&a, &b)));
        assert!(report.outcome.rounds <= 3);
    }

    /// Duplicate elements in either input (e.g. 32-bit signature collisions
    /// in a large listing) must be treated as set membership on both sides.
    /// Regression test: Bob used to keep duplicates, which cancel out of his
    /// XOR parity bitmap but count twice in the additive group checksum —
    /// leaving a group that could never verify no matter how it split.
    #[test]
    fn duplicate_inputs_reconcile_as_sets() {
        let (a, b) = random_pair(2_000, 40, 15);
        let mut a_dup = a.clone();
        a_dup.extend_from_slice(&a[..25]); // Alice sees 25 duplicates
        let mut b_dup = b.clone();
        b_dup.extend_from_slice(&b[..17]); // Bob sees 17 duplicates
        let cfg = PbsConfig::paper_default().unlimited_rounds();
        let report = Pbs::new(cfg).reconcile_with_known_d(&a_dup, &b_dup, 40, 7);
        assert!(report.outcome.claimed_success);
        assert!(report.outcome.matches(&symmetric_difference(&a, &b)));
    }

    #[test]
    fn reconciles_moderate_difference_with_estimator() {
        let (a, b) = random_pair(5_000, 200, 2);
        let report = Pbs::paper_default().reconcile(&a, &b, 3);
        assert!(report.outcome.claimed_success);
        assert!(report.outcome.matches(&symmetric_difference(&a, &b)));
        assert!(report.estimated_d.is_some());
        assert!(report.estimator_bits > 0);
    }

    #[test]
    fn identical_sets_reconcile_to_empty() {
        let (a, _) = random_pair(1_000, 0, 3);
        let report = Pbs::paper_default().reconcile_with_known_d(&a, &a, 1, 9);
        assert!(report.outcome.claimed_success);
        assert!(report.outcome.recovered.is_empty());
    }

    #[test]
    fn communication_is_near_twice_the_minimum() {
        let d = 500usize;
        let (a, b) = random_pair(20_000, d, 4);
        let report = Pbs::paper_default().reconcile_with_known_d(&a, &b, d, 5);
        assert!(report.outcome.claimed_success);
        let min = protocol::theoretical_minimum_bytes(d, 32);
        let ratio = report.outcome.comm.total_bytes() as f64 / min;
        // §8.1.2: PBS lands between 2.13 and 2.87 times the minimum.
        assert!(
            (1.8..=3.5).contains(&ratio),
            "communication ratio {ratio} outside the expected band"
        );
    }

    #[test]
    fn unlimited_rounds_always_terminates_successfully() {
        let cfg = PbsConfig::paper_default().unlimited_rounds();
        let (a, b) = random_pair(3_000, 100, 6);
        let report = Pbs::new(cfg).reconcile_with_known_d(&a, &b, 100, 11);
        assert!(report.outcome.claimed_success);
        assert!(report.outcome.matches(&symmetric_difference(&a, &b)));
    }

    #[test]
    fn two_sided_differences_are_recovered() {
        // Elements exclusive to Bob must also be discovered by Alice.
        let (pool, _) = random_pair(2_020, 0, 8);
        let a: Vec<u64> = pool[..2_010].to_vec();
        let b: Vec<u64> = pool[10..2_020].to_vec();
        let truth = symmetric_difference(&a, &b);
        assert_eq!(truth.len(), 20);
        let report = Pbs::paper_default().reconcile_with_known_d(&a, &b, truth.len(), 13);
        assert!(report.outcome.claimed_success);
        assert!(report.outcome.matches(&truth));
    }

    #[test]
    fn most_elements_recovered_in_first_round() {
        let d = 300usize;
        let (a, b) = random_pair(10_000, d, 10);
        let report = Pbs::paper_default().reconcile_with_known_d(&a, &b, d, 21);
        assert!(
            report.outcome.claimed_success,
            "run did not verify: rounds={}, per_round={:?}, decode_failures={}, recovered={} of {}",
            report.outcome.rounds,
            report.per_round_recovered,
            report.decode_failures,
            report.outcome.recovered.len(),
            d
        );
        // §5.3 predicts ~96% reconciled in round 1 on average; a single run
        // can dip when a group overflows its BCH capacity (that whole group
        // waits for the split), so assert a comfortably lower bound that
        // still demonstrates "the vast majority lands in round 1".
        let first = report.per_round_recovered[0] as f64;
        assert!(
            first / d as f64 > 0.8,
            "only {first} of {d} recovered in round 1"
        );
    }

    #[test]
    fn plan_matches_paper_example() {
        // The paper's running example selects n = 127; the optimal t under
        // our (slightly less pessimistic) success model lands within a notch
        // or two of the paper's 13 — see crates/analysis and EXPERIMENTS.md.
        let pbs = Pbs::paper_default();
        let p = pbs.plan(1000);
        assert_eq!(p.n, 127);
        assert!((11..=14).contains(&p.t), "t = {}", p.t);
    }

    #[test]
    fn reconciler_trait_object_works() {
        let (a, b) = random_pair(1_000, 20, 14);
        let schemes: Vec<Box<dyn Reconciler>> = vec![Box::new(Pbs::paper_default())];
        for s in &schemes {
            let out = s.reconcile(&a, &b, 5);
            assert_eq!(s.name(), "PBS");
            assert!(out.matches(&symmetric_difference(&a, &b)));
        }
    }

    #[test]
    #[should_panic(expected = "delta must be at least 1")]
    fn zero_delta_rejected() {
        PbsConfig::default().with_delta(0);
    }
}
