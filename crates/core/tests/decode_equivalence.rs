//! Parallel/batched-vs-serial Bob decode transcript properties.
//!
//! `BobSession::handle_sketches` (batched syndrome build, dense bin
//! accumulation, `par_map` over groups) must produce exactly the reports,
//! failure counts and converged difference of the seed's serial scalar path
//! (`handle_sketches_reference`), round for round — including runs that
//! force decode failures and §3.2 three-way splits.

use pbs_core::{AliceSession, BobSession, Pbs, PbsConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_and_reference_decodes_agree(
        n in 50usize..400,
        d_planned in 1usize..12,
        d_actual in 0usize..80,
        seed in any::<u64>(),
    ) {
        // Planning for d_planned while the true difference is d_actual
        // exercises both clean decodes (d_actual small) and decode-failure
        // splits (d_actual ≫ d_planned).
        prop_assume!(d_actual < n);
        let cfg = PbsConfig::default();
        let params = Pbs::new(cfg).plan(d_planned);
        let alice: Vec<u64> = (1..=n as u64).map(|x| x.wrapping_mul(0x9E3779B97F4A7C15) >> 32 | 1).collect();
        let bob: Vec<u64> = alice[d_actual..].to_vec();

        let mut a_fast = AliceSession::new(cfg, params, &alice, seed);
        let mut a_ref = AliceSession::new(cfg, params, &alice, seed);
        let mut b_fast = BobSession::new(cfg, params, &bob, seed);
        let mut b_ref = BobSession::new(cfg, params, &bob, seed);

        for round in 0..24 {
            let sk_fast = a_fast.start_round();
            let sk_ref = a_ref.start_round();
            prop_assert_eq!(&sk_fast, &sk_ref, "sketches diverged in round {}", round);
            let rep_fast = b_fast.handle_sketches(&sk_fast);
            let rep_ref = b_ref.handle_sketches_reference(&sk_ref);
            prop_assert_eq!(&rep_fast, &rep_ref, "reports diverged in round {}", round);
            prop_assert_eq!(b_fast.decode_failures(), b_ref.decode_failures());
            prop_assert_eq!(b_fast.session_count(), b_ref.session_count());
            let status = a_fast.apply_reports(&rep_fast);
            a_ref.apply_reports(&rep_ref);
            if status.all_verified {
                break;
            }
        }
        let mut rec_fast = a_fast.into_recovered();
        let mut rec_ref = a_ref.into_recovered();
        rec_fast.sort_unstable();
        rec_ref.sort_unstable();
        prop_assert_eq!(rec_fast, rec_ref);
    }
}
