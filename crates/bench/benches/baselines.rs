//! Criterion benchmarks comparing PBS against the three baselines on a fixed
//! reduced-scale workload (the micro-benchmark counterpart of Figures 1–3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddigest::DifferenceDigest;
use graphene::Graphene;
use pbs_core::Pbs;
use pinsketch::{PinSketch, PinSketchWp};
use protocol::{Reconciler, Workload};
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconcile_20k_set");
    group.sample_size(10);

    let pbs = Pbs::paper_default();
    let pinsketch = PinSketch::default();
    let pinsketch_wp = PinSketchWp::default();
    let ddigest = DifferenceDigest::default();
    let graphene = Graphene::default();

    for &d in &[10usize, 100, 500] {
        let workload = Workload {
            set_size: 20_000,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        let pair = workload.generate(2026);
        let schemes: Vec<&dyn Reconciler> =
            vec![&pbs, &pinsketch, &pinsketch_wp, &ddigest, &graphene];
        for scheme in schemes {
            group.bench_with_input(
                BenchmarkId::new(scheme.name().replace('/', "_"), d),
                &d,
                |b, _| {
                    b.iter(|| {
                        let out = scheme.reconcile(&pair.a, &pair.b, 99);
                        black_box(out.comm.total_bytes())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
