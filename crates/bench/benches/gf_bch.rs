//! Criterion micro-benchmarks of the substrate: GF(2^m) arithmetic and the
//! BCH syndrome-sketch encode/decode pipeline. These quantify the O(t²)
//! decoding cost the paper's complexity analysis is built on.

use bch::BchCodec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gf::{BackendChoice, Field, Poly};
use std::hint::black_box;

fn mul_pairs(f: &Field) -> Vec<(u64, u64)> {
    (0..1024u64)
        .map(|i| {
            let a = (i.wrapping_mul(0x9E3779B97F4A7C15) >> 8) % f.order();
            let b = (i.wrapping_mul(0xC2B2AE3D27D4EB4F) >> 8) % f.order();
            (a.max(1), b.max(1))
        })
        .collect()
}

fn bench_field_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_mul");
    for &m in &[7u32, 11, 16, 32] {
        let f = Field::new(m);
        let pairs = mul_pairs(&f);
        group.bench_with_input(BenchmarkId::new("mul_1k", m), &m, |bench, _| {
            bench.iter(|| {
                let mut acc = 0u64;
                for &(a, b) in &pairs {
                    acc ^= f.mul(a, b);
                }
                black_box(acc)
            });
        });
        // The seed's path: per-call feature detection + shift-loop reduce.
        let reference = Field::with_backend(m, BackendChoice::Reference);
        group.bench_with_input(BenchmarkId::new("mul_1k_reference", m), &m, |bench, _| {
            bench.iter(|| {
                let mut acc = 0u64;
                for &(a, b) in &pairs {
                    acc ^= reference.mul(a, b);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_field_mul_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_mul_slice");
    for &m in &[11u32, 16, 32] {
        let f = Field::new(m);
        let pairs = mul_pairs(&f);
        let xs: Vec<u64> = pairs.iter().map(|&(a, _)| a).collect();
        let ys: Vec<u64> = pairs.iter().map(|&(_, b)| b).collect();
        group.bench_with_input(BenchmarkId::new("mul_slice_1k", m), &m, |bench, _| {
            let mut dst = xs.clone();
            bench.iter(|| {
                dst.copy_from_slice(&xs);
                f.mul_slice(&mut dst, &ys);
                black_box(dst[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("square_slice_1k", m), &m, |bench, _| {
            let mut dst = xs.clone();
            bench.iter(|| {
                dst.copy_from_slice(&xs);
                f.square_slice(&mut dst);
                black_box(dst[0])
            });
        });
    }
    group.finish();
}

fn bench_chien(c: &mut Criterion) {
    let mut group = c.benchmark_group("chien_search");
    group.sample_size(10);
    for &(m, nroots) in &[(11u32, 10usize), (13, 20)] {
        let f = Field::new(m);
        let mut locator = Poly::one();
        for i in 0..nroots as u64 {
            let r = (i * 0x51D + 3) % (f.order() - 1) + 1;
            locator = locator.mul(&Poly::from_coeffs(vec![r, 1]), &f);
        }
        let want = locator.degree_or_zero();
        group.bench_with_input(
            BenchmarkId::new(format!("stepping_m{m}"), nroots),
            &m,
            |bench, _| {
                bench.iter(|| black_box(f.chien_search(locator.coeffs(), want).unwrap().len()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("horner_m{m}"), nroots),
            &m,
            |bench, _| {
                bench.iter(|| black_box(locator.roots_exhaustive(&f).len()));
            },
        );
    }
    group.finish();
}

fn bench_sketch_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch_sketch_encode");
    group.sample_size(10);
    // PBS-style small field (m=7, t=13) vs PinSketch-style large field (m=32).
    for &(m, t, elems) in &[(7u32, 13usize, 5_000usize), (32, 138, 5_000)] {
        let codec = BchCodec::new(m, t);
        let field_order = 1u64 << m;
        let elements: Vec<u64> = (1..=elems as u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) % (field_order - 1)) + 1)
            .collect();
        group.bench_with_input(
            BenchmarkId::new(format!("m{m}_t{t}"), elems),
            &elems,
            |bench, _| {
                bench.iter(|| black_box(codec.sketch_set(elements.iter().copied())));
            },
        );
    }
    group.finish();
}

fn bench_sketch_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch_sketch_decode");
    group.sample_size(10);
    // Decode a difference of exactly t elements: the worst case for
    // Berlekamp–Massey + root finding.
    for &(m, t) in &[(7u32, 13usize), (11, 20), (32, 50), (32, 200)] {
        let codec = BchCodec::new(m, t);
        let field_order = 1u64 << m;
        let mut diff: Vec<u64> = (1..=t as u64)
            .map(|i| (i.wrapping_mul(0x2545F4914F6CDD1D) % (field_order - 1)) + 1)
            .collect();
        diff.sort_unstable();
        diff.dedup();
        let sketch = codec.sketch_set(diff.iter().copied());
        group.bench_with_input(BenchmarkId::new(format!("m{m}"), t), &t, |bench, _| {
            bench.iter(|| black_box(codec.decode(&sketch).unwrap().len()));
        });
    }
    group.finish();
}

fn bench_poly_ops(c: &mut Criterion) {
    let f = Field::new(11);
    let a = Poly::from_coeffs((1..=64u64).collect());
    let b = Poly::from_coeffs((1..=32u64).map(|x| x * 31 % 2048).collect());
    c.bench_function("poly_mul_64x32_gf2k11", |bench| {
        bench.iter(|| black_box(a.mul(&b, &f)));
    });
    c.bench_function("poly_divrem_64by32_gf2k11", |bench| {
        bench.iter(|| black_box(a.div_rem(&b, &f)));
    });
}

criterion_group!(
    benches,
    bench_field_mul,
    bench_field_mul_batched,
    bench_chien,
    bench_sketch_encode,
    bench_sketch_decode,
    bench_poly_ops
);
criterion_main!(benches);
