//! Criterion benchmarks of PBS encoding and decoding (the Figure 1c/1d
//! metrics at micro-benchmark scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbs_core::{AliceSession, BobSession, Pbs, PbsConfig};
use protocol::Workload;
use std::hint::black_box;

fn bench_pbs_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbs_end_to_end");
    group.sample_size(10);
    for &d in &[10usize, 100, 1_000] {
        let workload = Workload {
            set_size: 20_000,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        let pair = workload.generate(42);
        let pbs = Pbs::paper_default();
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| {
                let report = pbs.reconcile_with_known_d(&pair.a, &pair.b, d.max(1), 7);
                black_box(report.outcome.recovered.len())
            });
        });
    }
    group.finish();
}

fn bench_pbs_encode_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbs_encode_round1");
    group.sample_size(10);
    for &d in &[100usize, 1_000] {
        let workload = Workload {
            set_size: 20_000,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        let pair = workload.generate(11);
        let cfg = PbsConfig::paper_default();
        let params = Pbs::new(cfg).plan(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut alice = AliceSession::new(cfg, params, &pair.a, 3);
                black_box(alice.start_round().len())
            });
        });
    }
    group.finish();
}

fn bench_pbs_decode_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbs_decode_round1");
    group.sample_size(10);
    for &d in &[100usize, 1_000] {
        let workload = Workload {
            set_size: 20_000,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        let pair = workload.generate(13);
        let cfg = PbsConfig::paper_default();
        let params = Pbs::new(cfg).plan(d);
        let mut alice = AliceSession::new(cfg, params, &pair.a, 5);
        let sketches = alice.start_round();
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut bob = BobSession::new(cfg, params, &pair.b, 5);
                let reports = bob.handle_sketches(&sketches);
                black_box(reports.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pbs_end_to_end,
    bench_pbs_encode_only,
    bench_pbs_decode_only
);
criterion_main!(benches);
