//! §2.2.1 / §2.3 closed-form probabilities: the ideal case and the type
//! (I)/(II) exception probabilities for the paper's running example
//! (d = 5, n = 255), plus a small sweep.

use analysis::{exception_probabilities, ideal_case_probability};

fn main() {
    println!("# §2 probabilities: ideal case and exceptions (balls-into-bins, exact)");
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>14} {:>18}",
        "d", "n", "ideal", "type I", "type II", "type II undetected"
    );
    for &(d, n) in &[
        (5usize, 255usize),
        (5, 127),
        (5, 511),
        (8, 255),
        (13, 127),
        (3, 63),
    ] {
        let e = exception_probabilities(d, n);
        println!(
            "{:>4} {:>6} {:>12.6} {:>12.6} {:>14.3e} {:>18.3e}",
            d, n, e.ideal, e.type_i, e.type_ii, e.type_ii_undetected
        );
        assert!((e.ideal - ideal_case_probability(d, n)).abs() < 1e-9);
    }
    println!();
    println!("Paper reference (d = 5, n = 255): ideal ≈ 0.96, type I ≈ 0.04,");
    println!("type II ≈ 1.52e-4, undetected type II ≈ 6e-7 (§1.3.1, §2.3).");
}
