//! Figure 5 / §J.3: PBS vs PinSketch/WP communication overhead when the hash
//! signature is 256 bits (blockchain transaction IDs).
//!
//! Like the paper, the underlying experiment runs on a 32-bit universe and
//! the communication of both schemes is re-priced for `log|U| = 256`: every
//! quantity whose width is `log|U|` (XOR sums, checksums, PinSketch syndrome
//! words, recovered elements) scales up, while PBS's `log n`-sized components
//! do not — which is exactly why the gap widens.

use bench::Scale;
use pbs_core::Pbs;
use pinsketch::PinSketchWp;
use protocol::{theoretical_minimum_bytes, Workload};

/// Re-price a PBS run for a larger signature width: per Formula (1) the
/// per-group cost is `t·log n + δ_i·log n + δ_i·log|U| + log|U|`; only the
/// last two terms scale with the signature width.
fn pbs_comm_bytes(report: &pbs_core::PbsReport, universe_bits: u64) -> f64 {
    let d = report.outcome.recovered.len() as u64;
    let base32 = report.outcome.comm.total_bytes() as f64;
    // Subtract the 32-bit-priced element-width parts and re-add them at the
    // new width: d XOR sums + (groups + splits) checksums + d echoed values
    // are the element-width components recorded in the transcript.
    let element_words = d + report.groups as u64 + report.decode_failures as u64 * 3;
    base32 - (element_words * 32) as f64 / 8.0 + (element_words * universe_bits) as f64 / 8.0
}

fn main() {
    let scale = Scale::from_env(50_000, 3, &[10, 100, 1_000]);
    let universe_bits = 256u64;
    println!("# Figure 5 / §J.3: communication with 256-bit signatures");
    println!(
        "# |A| = {}, trials per point = {}",
        scale.set_size, scale.trials
    );
    println!(
        "{:<14} {:>8} {:>14} {:>12}",
        "scheme", "d", "comm (KB)", "x-minimum"
    );

    for &d in &scale.d_values {
        let workload = Workload {
            set_size: scale.set_size,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        let minimum = theoretical_minimum_bytes(d, universe_bits as u32);

        let mut pbs_total = 0.0;
        let mut wp_total = 0.0;
        for trial in 0..scale.trials {
            let pair = workload.generate(0xF165 + d as u64 + trial);
            let pbs_report =
                Pbs::paper_default().reconcile_with_known_d(&pair.a, &pair.b, d.max(1), trial);
            pbs_total += pbs_comm_bytes(&pbs_report, universe_bits);
            let wp =
                PinSketchWp::default().reconcile_with_known_d(&pair.a, &pair.b, d.max(1), trial);
            // Every PinSketch/WP word is log|U| bits, so the total scales by 256/32.
            wp_total += wp.comm.total_bytes() as f64 * universe_bits as f64 / 32.0;
        }
        let pbs_kb = pbs_total / scale.trials as f64 / 1000.0;
        let wp_kb = wp_total / scale.trials as f64 / 1000.0;
        println!(
            "{:<14} {:>8} {:>14.3} {:>12.2}",
            "PBS",
            d,
            pbs_kb,
            pbs_kb * 1000.0 / minimum
        );
        println!(
            "{:<14} {:>8} {:>14.3} {:>12.2}",
            "PinSketch/WP",
            d,
            wp_kb,
            wp_kb * 1000.0 / minimum
        );
    }
    println!();
    println!("Paper shape target (§J.3): PBS's advantage over PinSketch/WP widens at 256-bit");
    println!("signatures because PinSketch/WP's safety margin is priced in log|U| bits.");
}
