//! Regenerates `BENCH_decode_path.json`: the decode/estimate-path speedup
//! report, the PR-2 counterpart of `BENCH_gf_bch.json`.
//!
//! Measures the batched kernels against the seed's per-element scalar path
//! (kept in-tree as `*_reference` entry points) on the workloads that
//! dominate the non-sketching half of a reconciliation round trip:
//!
//! * IBLT insert and peel of an n = 10^5 difference (the D.Digest decode),
//! * the three estimator insert paths over 10^5 elements,
//! * `Poly::mul` at BCH-locator-like degrees (Karatsuba vs schoolbook),
//! * Bob's per-group PBS decode for a d = 100 difference over |A| = 10^5
//!   (batched syndrome build + dense bin accumulation + `par_map` groups vs
//!   the seed's serial scalar loop),
//! * the network frame codec round trip of one full d = 1000 protocol round
//!   (one batched sketches frame + one reports frame, CRC verified, vs a
//!   naive frame-per-message transport) — this is the `net_roundtrip`
//!   metric `check_bench` gates serialization regressions with,
//! * the wire-v3 delta short-circuit: serving 50 changes of a 100k-element
//!   store from the changelog (`delta_since` + chunked `DeltaBatch`
//!   encode/decode + client-side collapse) vs running the full in-process
//!   reconciliation of the same 50-element difference — the gated
//!   `delta_sync` metric; its speedup is the CPU-side win the
//!   delta-subscription protocol exists to deliver,
//! * the durable-store recovery path: reopening a 100k-element store from
//!   its newest snapshot plus a 5-batch WAL tail vs replaying its entire
//!   2000-batch churny change history from a genesis WAL — the gated
//!   `wal_recovery` metric; its speedup is what snapshot compaction buys
//!   every restart,
//! * the live-push subscription path: apply→`DeltaDone` latency over one
//!   parked push subscription vs a tight poll of one-shot delta syncs on
//!   fresh connections, against a real loopback server — the gated
//!   `push_latency` metric; its speedup is the per-event connect +
//!   handshake that live push amortizes away,
//! * the telemetry overhead: one full reconciliation against two otherwise
//!   identical loopback servers, `ServerConfig::telemetry` on (fast, the
//!   default) vs off (reference) — the gated `metrics_overhead` metric;
//!   its speedup must stay ~1.0, proving the histogram layer documented in
//!   `docs/OBSERVABILITY.md` costs no measurable share of a sync.
//! * the load-harness tail: p99 `total` session latency of 150 open-loop
//!   delta catch-ups at 300/s, driven by the loadgen engine's multiplexing
//!   worker pool (fast) vs one blocking OS thread per arrival (reference)
//!   over the same seeded schedule — the gated `load_p99` metric; a
//!   regression means the measuring instrument itself got slower.
//!
//! Run with `cargo run --release -p bench --bin bench_decode_path`.
//! The CI bench gate (`check_bench`) compares every `fast_*` metric of the
//! freshly emitted report against the committed baseline.

use estimator::{Estimator, MinWiseEstimator, StrataEstimator, TowEstimator};
use gf::{Field, Poly};
use iblt::{Iblt, PeelStrategy, SubtableIblt, DEFAULT_SHARD_CELLS};
use pbs_core::{AliceSession, BobSession, Pbs, PbsConfig};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall-clock time of `f`, in nanoseconds.
fn best_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn keys(n: usize, salt: u64) -> Vec<u64> {
    let mut x = salt | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x | 1 // keep keys nonzero
        })
        .collect()
}

struct Row {
    name: String,
    detail: String,
    fast_ms: f64,
    reference_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reference_ms / self.fast_ms
    }
    fn print(&self) {
        println!(
            "{:<18} {:<26} {:>9.2} ms fast, {:>9.2} ms reference, {:>5.1}x",
            self.name,
            self.detail,
            self.fast_ms,
            self.reference_ms,
            self.speedup()
        );
    }
}

fn bench_iblt(n: usize) -> (Row, Row) {
    let cells = 2 * n;
    let hashes = 4u32;
    let ks = keys(n, 0xB10C);

    let fast_insert_ns = best_ns(3, || {
        let mut t = Iblt::new(cells, hashes, 7);
        t.insert_batch(&ks);
        black_box(&t);
    });
    let reference_insert_ns = best_ns(3, || {
        let mut t = Iblt::new(cells, hashes, 7);
        for &k in &ks {
            t.insert_reference(k);
        }
        black_box(&t);
    });

    // The peel input: a difference table holding all n keys.
    let mut table = Iblt::new(cells, hashes, 7);
    table.insert_batch(&ks);
    let expected = table.peel_reference();
    let fast_peel_ns = best_ns(3, || {
        let r = table.peel();
        assert_eq!(r.complete, expected.complete, "peel completeness diverged");
        assert_eq!(r.len(), expected.len(), "peel recovery diverged");
        black_box(r);
    });
    let reference_peel_ns = best_ns(3, || {
        black_box(table.peel_reference());
    });

    (
        Row {
            name: "iblt_insert".into(),
            detail: format!("n={n} cells={cells} k={hashes}"),
            fast_ms: fast_insert_ns / 1e6,
            reference_ms: reference_insert_ns / 1e6,
        },
        Row {
            name: "iblt_peel".into(),
            detail: format!("n={n} cells={cells} k={hashes}"),
            fast_ms: fast_peel_ns / 1e6,
            reference_ms: reference_peel_ns / 1e6,
        },
    )
}

/// The sub-table ratio: a [`SubtableIblt`] — elements grouped by a
/// top-level hash into L2-sized mini-IBLTs, so every peel probe is
/// cache-resident — against the committed flat-peel fast path (the wave
/// peeler) decoding the same difference with the same total cell budget.
/// Measured at a table size well past any cache so the flat peeler is
/// genuinely DRAM-bound. Each rep peels a *pre-made, untimed* clone so
/// the measurement is the destructive peel cascade itself: the clone's
/// cost is pure allocator behaviour (one 24 MB memcpy vs ~120 shard-sized
/// ones, huge-page luck included) and would otherwise drown the cascade
/// difference in noise that says nothing about peeling. Same-run ratio
/// per the 1-CPU gating policy: only ratios are robust across machines.
fn bench_iblt_subtable(n: usize) -> Row {
    let cells = 2 * n;
    let hashes = 4u32;
    let ks = keys(n, 0xB10C);

    let mut flat = Iblt::new(cells, hashes, 7);
    flat.insert_batch(&ks);
    let mut sharded = SubtableIblt::new(cells, hashes, 7, DEFAULT_SHARD_CELLS);
    sharded.insert_batch(&ks);

    let mut subtable_ns = f64::INFINITY;
    for _ in 0..5 {
        let mut work = sharded.clone();
        let t = std::time::Instant::now();
        let r = work.try_peel_mut().expect("sharded bench table decodes");
        subtable_ns = subtable_ns.min(t.elapsed().as_nanos() as f64);
        assert_eq!(r.len(), ks.len(), "sharded peel diverged");
        black_box(r);
    }
    let mut wave_ns = f64::INFINITY;
    for _ in 0..5 {
        let mut work = flat.clone();
        let t = std::time::Instant::now();
        let r = work
            .try_peel_mut_with(PeelStrategy::Wave)
            .expect("flat bench table decodes");
        wave_ns = wave_ns.min(t.elapsed().as_nanos() as f64);
        assert_eq!(r.len(), ks.len(), "wave peel diverged");
        black_box(r);
    }

    Row {
        name: "iblt_peel_subtable".into(),
        detail: format!(
            "n={n} cells={cells} k={hashes} shard={DEFAULT_SHARD_CELLS} sharded layout vs flat wave"
        ),
        fast_ms: subtable_ns / 1e6,
        reference_ms: wave_ns / 1e6,
    }
}

fn bench_estimators(n: usize) -> Vec<Row> {
    let elems = keys(n, 0xE571);
    let mut rows = Vec::new();

    let tow_fast = best_ns(3, || {
        let mut e = TowEstimator::new(128, 3);
        e.insert_slice(&elems);
        black_box(e.sketches().len());
    });
    let tow_ref = best_ns(3, || {
        let mut e = TowEstimator::new(128, 3);
        for &x in &elems {
            e.insert(x);
        }
        black_box(e.sketches().len());
    });
    rows.push(Row {
        name: "tow_insert".into(),
        detail: format!("n={n} sketches=128"),
        fast_ms: tow_fast / 1e6,
        reference_ms: tow_ref / 1e6,
    });

    let strata_fast = best_ns(3, || {
        let mut e = StrataEstimator::new(32, 3);
        e.insert_slice(&elems);
        black_box(e.strata_count());
    });
    let strata_ref = best_ns(3, || {
        let mut e = StrataEstimator::new(32, 3);
        for &x in &elems {
            e.insert(x);
        }
        black_box(e.strata_count());
    });
    rows.push(Row {
        name: "strata_insert".into(),
        detail: format!("n={n} strata=32"),
        fast_ms: strata_fast / 1e6,
        reference_ms: strata_ref / 1e6,
    });

    let mw_fast = best_ns(3, || {
        let mut e = MinWiseEstimator::new(128, 3);
        e.insert_slice(&elems);
        black_box(e.hash_count());
    });
    let mw_ref = best_ns(3, || {
        let mut e = MinWiseEstimator::new(128, 3);
        for &x in &elems {
            e.insert(x);
        }
        black_box(e.hash_count());
    });
    rows.push(Row {
        name: "minwise_insert".into(),
        detail: format!("n={n} hashes=128"),
        fast_ms: mw_fast / 1e6,
        reference_ms: mw_ref / 1e6,
    });

    rows
}

fn bench_poly_mul(len: usize) -> Row {
    let f = Field::new(32);
    let coeffs =
        |salt: u64| Poly::from_coeffs(keys(len, salt).into_iter().map(|k| k % f.order()).collect());
    let a = coeffs(0x90);
    let b = coeffs(0x91);
    assert_eq!(
        a.mul(&b, &f),
        a.mul_schoolbook(&b, &f),
        "Karatsuba product diverged from schoolbook"
    );
    let fast = best_ns(5, || {
        black_box(a.mul(&b, &f));
    });
    let reference = best_ns(5, || {
        black_box(a.mul_schoolbook(&b, &f));
    });
    Row {
        name: "poly_mul".into(),
        detail: format!("deg={} m=32", len - 1),
        fast_ms: fast / 1e6,
        reference_ms: reference / 1e6,
    }
}

fn bench_bob_decode(set_size: usize, d: usize) -> Row {
    let cfg = PbsConfig::default();
    let params = Pbs::new(cfg).plan(d);
    let alice: Vec<u64> = keys(set_size, 0xA11CE);
    let bob: Vec<u64> = alice[d..].to_vec();
    let seed = 42u64;

    let mut a = AliceSession::new(cfg, params, &alice, seed);
    let sketches = a.start_round();

    // Bob's state is only mutated on decode failures; at this d the sketches
    // decode cleanly, so one session per path can be timed repeatedly.
    let mut bob_fast = BobSession::new(cfg, params, &bob, seed);
    let mut bob_ref = BobSession::new(cfg, params, &bob, seed);
    let expect = bob_ref.handle_sketches_reference(&sketches);
    let fast = best_ns(5, || {
        let reports = bob_fast.handle_sketches(&sketches);
        assert_eq!(reports, expect, "batched reports diverged from reference");
        black_box(reports);
    });
    let reference = best_ns(3, || {
        black_box(bob_ref.handle_sketches_reference(&sketches));
    });
    assert_eq!(bob_fast.decode_failures(), 0, "unexpected decode failure");

    Row {
        name: "bob_decode".into(),
        detail: format!("|A|={set_size} d={d} g={} t={}", params.groups, params.t),
        fast_ms: fast / 1e6,
        reference_ms: reference / 1e6,
    }
}

fn bench_net_roundtrip(set_size: usize, d: usize) -> Row {
    use pbs_net::frame::{read_frame, write_frame, Frame, DEFAULT_MAX_FRAME};

    let cfg = PbsConfig::default();
    let params = Pbs::new(cfg).plan(d);
    let alice: Vec<u64> = keys(set_size, 0xF4A3);
    let bob: Vec<u64> = alice[d..].to_vec();
    let seed = 9u64;
    let mut a = AliceSession::new(cfg, params, &alice, seed);
    let batch = a.start_round();
    let mut b = BobSession::new(cfg, params, &bob, seed);
    let reports = b.handle_sketches(&batch);

    // Fast path: the deployed transport — one frame per message *batch*,
    // length-prefixed and CRC-checked, decoded back through the same codec.
    let sketches_frame = Frame::Sketches {
        m: params.m,
        batch: batch.clone(),
    };
    let reports_frame = Frame::Reports(reports.clone());
    let mut wire = Vec::new();
    let fast = best_ns(5, || {
        wire.clear();
        write_frame(&mut wire, &sketches_frame, DEFAULT_MAX_FRAME).expect("write sketches");
        write_frame(&mut wire, &reports_frame, DEFAULT_MAX_FRAME).expect("write reports");
        let mut cursor = wire.as_slice();
        let (s, _) = read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("read sketches");
        let (r, _) = read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("read reports");
        black_box((s, r));
    });

    // Reference: the naive transport that frames every group message
    // individually (per-message headers, CRCs and payload preambles).
    let per_message: Vec<Frame> = batch
        .iter()
        .map(|s| Frame::Sketches {
            m: params.m,
            batch: vec![s.clone()],
        })
        .chain(reports.iter().map(|r| Frame::Reports(vec![r.clone()])))
        .collect();
    let reference = best_ns(5, || {
        wire.clear();
        for f in &per_message {
            write_frame(&mut wire, f, DEFAULT_MAX_FRAME).expect("write message");
        }
        let mut cursor = wire.as_slice();
        for _ in 0..per_message.len() {
            black_box(read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("read message"));
        }
    });

    Row {
        name: "net_roundtrip".into(),
        detail: format!("|A|={set_size} d={d} groups={}", params.groups),
        fast_ms: fast / 1e6,
        reference_ms: reference / 1e6,
    }
}

fn bench_delta_sync(set_size: usize, changes: usize) -> Row {
    use pbs_net::frame::{
        delta_batch_frames, delta_chunk_capacity, read_frame, write_frame, Frame, DEFAULT_MAX_FRAME,
    };
    use pbs_net::store::{DeltaAnswer, MutableStore, SetStore};

    let pool = keys(set_size + changes / 2, 0xDE17A);
    let baseline = &pool[..set_size];
    let store = MutableStore::new(baseline.iter().copied());
    // `changes` changed elements in one batch: half inserts, half removes.
    store.apply(&pool[set_size..], &baseline[..changes - changes / 2]);

    // Fast path: what the server + client do on a granted delta
    // subscription — read the changelog tail, chunk and frame it, CRC and
    // parse it back, collapse into the client's net add/remove sets.
    let capacity = delta_chunk_capacity(DEFAULT_MAX_FRAME);
    let mut wire = Vec::new();
    let fast = best_ns(25, || {
        wire.clear();
        let DeltaAnswer::Changes { batches, current } = store.delta_since(0) else {
            panic!("changelog must be intact");
        };
        for batch in &batches {
            for frame in delta_batch_frames(batch.epoch, &batch.added, &batch.removed, capacity) {
                write_frame(&mut wire, &frame, DEFAULT_MAX_FRAME).expect("write delta");
            }
        }
        write_frame(
            &mut wire,
            &Frame::DeltaDone { epoch: current },
            DEFAULT_MAX_FRAME,
        )
        .expect("write done");
        let mut cursor = wire.as_slice();
        // The client's own collapse rule: pbs_net::DeltaFold, shared with
        // client::sync so this metric cannot drift from what ships.
        let mut fold = pbs_net::DeltaFold::new();
        loop {
            match read_frame(&mut cursor, DEFAULT_MAX_FRAME)
                .expect("read delta")
                .0
            {
                Frame::DeltaBatch {
                    added: a,
                    removed: r,
                    ..
                } => fold.fold(a, r),
                Frame::DeltaDone { .. } => break,
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(fold.len(), changes);
        black_box(fold);
    });

    // Reference: the same 50-element difference reconciled the classic way
    // — both session state machines built from scratch (that O(|set|) cost
    // is exactly what a real fallback session pays), one sketch/report
    // round through the frame codec, reports applied.
    let cfg = PbsConfig::default();
    let params = Pbs::new(cfg).plan(changes);
    let client_set = baseline;
    let server_set = store.snapshot();
    let seed = 77u64;
    let reference = best_ns(3, || {
        let mut alice = AliceSession::new(cfg, params, client_set, seed);
        let mut bob = BobSession::new(cfg, params, &server_set, seed);
        wire.clear();
        let batch = alice.start_round();
        write_frame(
            &mut wire,
            &Frame::Sketches { m: params.m, batch },
            DEFAULT_MAX_FRAME,
        )
        .expect("write sketches");
        let mut cursor = wire.as_slice();
        let Frame::Sketches { batch, .. } = read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .expect("read sketches")
            .0
        else {
            panic!("expected sketches");
        };
        let reports = bob.handle_sketches(&batch);
        wire.clear();
        write_frame(&mut wire, &Frame::Reports(reports), DEFAULT_MAX_FRAME).expect("write reports");
        let mut cursor = wire.as_slice();
        let Frame::Reports(reports) = read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .expect("read reports")
            .0
        else {
            panic!("expected reports");
        };
        black_box(alice.apply_reports(&reports));
    });

    Row {
        name: "delta_sync".into(),
        detail: format!("|store|={set_size} changes={changes}"),
        fast_ms: fast / 1e6,
        reference_ms: reference / 1e6,
    }
}

/// The durable-store recovery path: reopening a store that was compacted
/// (newest snapshot + a short WAL tail) vs replaying the entire change
/// history from a genesis WAL. Both land on the identical (set, epoch);
/// the speedup is what snapshot compaction buys every restart.
fn bench_wal_recovery(batches: usize, batch_size: usize, tail: usize) -> Row {
    use pbs_net::store::ChangeBatch;
    use pbs_net::wal::{recover, DurableOptions, Wal};

    let root = std::env::temp_dir().join(format!("pbs_bench_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let genesis_dir = root.join("genesis");
    let compacted_dir = root.join("compacted");
    std::fs::create_dir_all(&genesis_dir).expect("create bench dir");
    std::fs::create_dir_all(&compacted_dir).expect("create bench dir");

    // snapshot_every: usize::MAX — compaction is driven by hand below.
    let options = DurableOptions {
        snapshot_every: usize::MAX,
        ..DurableOptions::default()
    };
    // Churn: every batch adds `batch_size` elements and removes 3/4 of the
    // previous batch's adds, so the change *history* is several times the
    // final *state* — the regime snapshots exist for.
    let churn = batch_size * 3 / 4;
    let pool = keys(batches * batch_size, 0x57A1);
    let mut genesis = Wal::open(&genesis_dir, options).expect("open genesis WAL");
    let mut compacted = Wal::open(&compacted_dir, options).expect("open compacted WAL");
    let mut state: std::collections::HashSet<u64> =
        std::collections::HashSet::with_capacity(batches * batch_size);
    let mut log_tail: Vec<ChangeBatch> = Vec::new();
    let mut prev_added: &[u64] = &[];
    for i in 0..batches {
        let epoch = (i + 1) as u64;
        let added = &pool[i * batch_size..(i + 1) * batch_size];
        let removed = &prev_added[..churn.min(prev_added.len())];
        genesis.append(epoch, added, removed).expect("append");
        if i + tail == batches {
            // Snapshot everything before the tail, then log only the tail.
            let snap: Vec<u64> = state.iter().copied().collect();
            compacted
                .compact(&snap, epoch - 1, &log_tail)
                .expect("compact");
        }
        if i + tail >= batches {
            compacted
                .append(epoch, added, removed)
                .expect("append tail");
        }
        for e in removed {
            state.remove(e);
        }
        state.extend(added.iter().copied());
        log_tail.push(ChangeBatch {
            epoch,
            added: added.to_vec(),
            removed: removed.to_vec(),
        });
        if log_tail.len() > tail {
            log_tail.remove(0);
        }
        prev_added = added;
    }

    let cap = pbs_net::store::DEFAULT_CHANGELOG_CAPACITY;
    let fast_state = recover(&compacted_dir, cap).expect("recover compacted");
    let reference_state = recover(&genesis_dir, cap).expect("recover genesis");
    assert_eq!(fast_state.epoch, reference_state.epoch, "epoch diverged");
    assert_eq!(
        fast_state.elements, reference_state.elements,
        "recovered set diverged"
    );

    let fast = best_ns(15, || {
        black_box(recover(&compacted_dir, cap).expect("recover compacted"));
    });
    let reference = best_ns(3, || {
        black_box(recover(&genesis_dir, cap).expect("recover genesis"));
    });
    let _ = std::fs::remove_dir_all(&root);

    Row {
        name: "wal_recovery".into(),
        detail: format!(
            "|store|={} history={batches}x{batch_size} tail={tail}",
            batches * batch_size - (batches - 1) * churn
        ),
        fast_ms: fast / 1e6,
        reference_ms: reference / 1e6,
    }
}

/// Live-push latency: the time from `MutableStore::apply` on the server to
/// the subscriber holding the event's `DeltaDone`, over one parked push
/// subscription (fast) vs a tight poll of one-shot delta syncs on fresh
/// connections (reference). Both observe the same mutations over the same
/// loopback server; the speedup is the per-event TCP connect + handshake
/// that the push path amortizes away.
fn bench_push_latency(set_size: usize, events: usize) -> Row {
    use pbs_net::client::{sync, ClientConfig, SyncClient};
    use pbs_net::server::{Server, ServerConfig};
    use pbs_net::store::MutableStore;
    use std::sync::Arc;

    let store = Arc::new(MutableStore::new(keys(set_size, 0xF011)));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind bench server");
    let addr = server.local_addr();
    let pool = keys(8 * events, 0xE7E27);
    let mut pool = pool.iter().copied();

    // Fast path: park one subscription; each event is pushed the moment it
    // commits, and the loop blocks until that event's DeltaDone arrives.
    let mut sub = SyncClient::connect(addr)
        .expect("resolve")
        .subscribe(store.epoch())
        .expect("subscribe");
    let mut epoch = sub.next().expect("catch-up").expect("catch-up ok").to_epoch;
    let fast_ns = best_ns(2, || {
        for _ in 0..events {
            store.apply(&[pool.next().expect("element pool")], &[]);
            let target = epoch + 1;
            while epoch < target {
                epoch = sub.next().expect("push").expect("push ok").to_epoch;
            }
        }
    }) / events as f64;
    drop(sub);

    // Reference: the tightest possible poll — one fresh connection per
    // probe, served by the same delta short-circuit (the mutation lands
    // before the probe, so every event costs exactly one poll; a real
    // poller pays this *per interval*, event or not).
    let mut base_epoch = store.epoch();
    let reference_ns = best_ns(2, || {
        for _ in 0..events {
            store.apply(&[pool.next().expect("element pool")], &[]);
            let target = base_epoch + 1;
            while base_epoch < target {
                let config = ClientConfig::builder().delta_epoch(base_epoch).build();
                let report = sync(addr, &[], &config).expect("poll sync");
                base_epoch = report.delta.expect("delta poll granted").to_epoch;
            }
        }
    }) / events as f64;
    server.shutdown();

    Row {
        name: "push_latency".into(),
        detail: format!("|store|={set_size} events={events}"),
        fast_ms: fast_ns / 1e6,
        reference_ms: reference_ns / 1e6,
    }
}

/// Telemetry overhead: the same full reconciliation against two otherwise
/// identical loopback servers, one with `ServerConfig::telemetry` on (the
/// default — per-phase histograms and push-dispatch timing recorded) and
/// one with it off (counters only). The contract is a speedup of ~1.0:
/// the instrumentation must cost no measurable share of a sync, and the
/// `check_bench` gate fails if the instrumented path regresses.
fn bench_metrics_overhead(set_size: usize, d: usize) -> Row {
    use pbs_net::client::SyncClient;
    use pbs_net::server::{Server, ServerConfig};
    use pbs_net::store::InMemoryStore;
    use std::sync::Arc;

    // Distinct nonzero keys inside the default 32-bit universe (odd
    // multiplier → bijection mod 2^32; i ≥ 1 keeps 0 out).
    let server_set: Vec<u64> = (1..=set_size as u64)
        .map(|i| i.wrapping_mul(2_654_435_761) & 0xFFFF_FFFF)
        .collect();
    // Alice holds a strict subset, so every repetition reconciles the
    // identical d-element difference and never mutates the server store.
    let alice: Vec<u64> = server_set[d..].to_vec();
    let syncs = 5usize;
    let time_sync = |telemetry: bool| {
        let store = Arc::new(InMemoryStore::new(server_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            store as Arc<_>,
            ServerConfig {
                telemetry,
                ..ServerConfig::default()
            },
        )
        .expect("bind bench server");
        let client = SyncClient::connect(server.local_addr()).expect("resolve");
        let ns = best_ns(3, || {
            for _ in 0..syncs {
                let report = client.sync(&alice).expect("sync");
                assert!(report.verified);
                assert_eq!(report.recovered.len(), d);
            }
        }) / syncs as f64;
        server.shutdown();
        ns
    };
    let fast_ns = time_sync(true);
    let reference_ns = time_sync(false);

    Row {
        name: "metrics_overhead".into(),
        detail: format!("|B|={set_size} d={d} telemetry on/off"),
        fast_ms: fast_ns / 1e6,
        reference_ms: reference_ns / 1e6,
    }
}

/// Open-loop load-harness p99: the `total` session latency at p99 when
/// `sessions` delta catch-ups arrive at `rate`/s against a loopback
/// server, driven by the loadgen worker pool multiplexing every session
/// on a handful of threads (fast) vs a thread-per-arrival driver that
/// gives each session its own OS thread and blocking client (reference).
/// Same seeded arrival schedule, same server, same workload — the
/// difference is purely the session-driving discipline, and the gated
/// `fast_ms` keeps the harness's own measurement path honest: a
/// regression here means the instrument got slower, not the server.
fn bench_load_p99(sessions: usize, rate: f64) -> Row {
    use loadgen::{build_plan, Engine, EngineConfig, Kind, Mix, PlanConfig, Report, SessionSpec};
    use pbs_net::client::{sync, ClientConfig};
    use pbs_net::server::{Server, ServerConfig};
    use pbs_net::store::MutableStore;
    use std::sync::Arc;
    use std::time::Duration;

    let base: Vec<u64> = keys(10_000, 0x10AD);
    let store = Arc::new(MutableStore::new(base.iter().copied()));
    let epoch = store.epoch();
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind bench server");
    let addr = server.local_addr();

    // All-delta mix: the cheapest session the protocol serves, so the
    // measured tail is the driving machinery, not the decode.
    let plan_config = PlanConfig {
        sessions,
        rate,
        mix: Mix {
            full: 0,
            delta: 1,
            pipelined: 0,
            subscribe: 0,
        },
        seed: 0x10AD_BE9C,
    };
    let plan = build_plan(&plan_config);
    assert!(plan.iter().all(|a| a.kind == Kind::Delta));

    // The open-loop tail on a small shared box is dominated by scheduler
    // noise — multi-second throttle bursts inflate a whole pass 10x — so
    // both sides take the best p99 over repeated passes, and passes keep
    // running until (a) the two best values on each side agree within 30%
    // (one quiet pass is luck, two agreeing passes are a measurement) and
    // (b) the best values sit within a sane multiple of the floor: the
    // best-of-N latency of an isolated one-shot sync, itself re-sampled
    // every pass so one quiet 100µs rep anywhere in the run anchors it.
    // (a) alone converges happily on a uniformly-throttled triple; the
    // floor check is what rejects that. Fast and reference passes are
    // interleaved so a burst degrades both sides alike instead of skewing
    // the gated speedup ratio.
    const MIN_PASSES: usize = 3;
    const MAX_PASSES: usize = 8;
    let converged = |samples: &[u64]| {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        sorted[1] <= sorted[0] + sorted[0] * 3 / 10
    };
    let base = Arc::new(base);
    let mut fast_samples_us: Vec<u64> = Vec::new();
    let mut reference_samples_us: Vec<u64> = Vec::new();
    let mut floor_ns = f64::INFINITY;
    for pass in 0..MAX_PASSES {
        floor_ns = floor_ns.min(best_ns(20, || {
            let config = ClientConfig::builder().delta_epoch(epoch).build();
            let report = sync(addr, &[], &config).expect("floor sync");
            black_box(report.delta.is_some());
        }));
        let quiet = |samples: &[u64]| {
            *samples.iter().min().expect("non-empty") as f64 * 1e3 <= floor_ns * 15.0
        };
        if pass >= MIN_PASSES
            && converged(&fast_samples_us)
            && converged(&reference_samples_us)
            && quiet(&fast_samples_us)
            && quiet(&reference_samples_us)
        {
            break;
        }
        // Fast: the loadgen engine — 2 workers multiplexing every
        // in-flight session, per-phase latency recorded inside the state
        // machine.
        let mut engine = Engine::start(EngineConfig {
            target: addr,
            workers: 2,
            spec: SessionSpec::default(),
            base_set: Arc::clone(&base),
            drops: 1,
            delta_epoch: epoch,
        })
        .expect("start engine");
        let started = Instant::now();
        engine.run_plan(&plan, started);
        let (metrics, elapsed) = engine.drain(Duration::from_secs(60), Duration::ZERO);
        let report = Report::build(&metrics, &plan_config, elapsed);
        assert!(
            report.settled() && report.failed == 0,
            "engine run degraded"
        );
        let p99 = report
            .phases
            .iter()
            .find(|(name, ..)| *name == "total")
            .map(|&(_, _, p99, _, _)| p99)
            .expect("total phase");
        fast_samples_us.push(p99);

        // Reference: the same schedule, one OS thread + blocking client
        // per arrival.
        let ref_started = Instant::now();
        let handles: Vec<_> = plan
            .iter()
            .map(|arrival| {
                let due = ref_started + arrival.at;
                std::thread::spawn(move || {
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let begun = Instant::now();
                    let config = ClientConfig::builder().delta_epoch(epoch).build();
                    let report = sync(addr, &[], &config).expect("reference sync");
                    assert!(report.delta.is_some());
                    begun.elapsed()
                })
            })
            .collect();
        let mut latencies: Vec<Duration> = handles
            .into_iter()
            .map(|h| h.join().expect("reference session thread"))
            .collect();
        latencies.sort_unstable();
        let ref_p99 = latencies[(latencies.len() - 1) * 99 / 100];
        reference_samples_us.push(ref_p99.as_micros() as u64);
    }
    server.shutdown();
    let fast_p99_us = *fast_samples_us.iter().min().expect("at least one pass");
    let reference_p99_us = *reference_samples_us
        .iter()
        .min()
        .expect("at least one pass");

    Row {
        name: "load_p99".into(),
        detail: format!(
            "sessions={sessions} rate={rate:.0}/s delta-only best-of-{}",
            fast_samples_us.len()
        ),
        fast_ms: fast_p99_us as f64 / 1e3,
        reference_ms: reference_p99_us as f64 / 1e3,
    }
}

fn main() {
    let n = 100_000usize;
    let (iblt_insert, iblt_peel) = bench_iblt(n);
    iblt_insert.print();
    iblt_peel.print();
    // 10× the difference size of the flat rows: the sub-table layout's win
    // is cache (and TLB) residency, so it is measured where the table
    // (~48 MiB) dwarfs any cache level and the flat peeler's probe stream
    // spans more 4 KiB pages than a TLB holds.
    let iblt_peel_subtable = bench_iblt_subtable(10 * n);
    iblt_peel_subtable.print();
    let estimators = bench_estimators(n);
    for r in &estimators {
        r.print();
    }
    let poly = bench_poly_mul(512);
    poly.print();
    let bob = bench_bob_decode(n, 100);
    bob.print();
    let net = bench_net_roundtrip(n / 2, 1000);
    net.print();
    let delta = bench_delta_sync(n, 50);
    delta.print();
    let wal = bench_wal_recovery(2000, 200, 5);
    wal.print();
    let push = bench_push_latency(n / 10, 20);
    push.print();
    let overhead = bench_metrics_overhead(n / 10, 100);
    overhead.print();
    let load = bench_load_p99(300, 300.0);
    load.print();

    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let parallel = cfg!(feature = "parallel");

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"decode_path\",\n");
    let _ = writeln!(json, "  \"parallel_feature\": {parallel},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let emit = |json: &mut String, key: &str, row: &Row, tail: &str| {
        let _ = writeln!(
            json,
            "  \"{key}\": {{\"detail\": \"{}\", \"fast_ms\": {:.3}, \"reference_ms\": {:.3}, \"speedup\": {:.2}}}{tail}",
            row.detail,
            row.fast_ms,
            row.reference_ms,
            row.speedup()
        );
    };
    emit(&mut json, "iblt_insert", &iblt_insert, ",");
    emit(&mut json, "iblt_peel", &iblt_peel, ",");
    emit(&mut json, "iblt_peel_subtable", &iblt_peel_subtable, ",");
    json.push_str("  \"estimator_insert\": [\n");
    for (i, r) in estimators.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"fast_ms\": {:.3}, \"reference_ms\": {:.3}, \"speedup\": {:.2}}}",
            r.name,
            r.detail,
            r.fast_ms,
            r.reference_ms,
            r.speedup()
        );
        json.push_str(if i + 1 < estimators.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    emit(&mut json, "poly_mul", &poly, ",");
    emit(&mut json, "bob_decode", &bob, ",");
    emit(&mut json, "net_roundtrip", &net, ",");
    emit(&mut json, "delta_sync", &delta, ",");
    emit(&mut json, "wal_recovery", &wal, ",");
    emit(&mut json, "push_latency", &push, ",");
    emit(&mut json, "metrics_overhead", &overhead, ",");
    emit(&mut json, "load_p99", &load, "");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decode_path.json");
    std::fs::write(path, &json).expect("write BENCH_decode_path.json");
    println!("wrote {path}");
}
