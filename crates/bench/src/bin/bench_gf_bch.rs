//! Regenerates `BENCH_gf_bch.json`: the GF(2^m)/BCH hot-path speedup report.
//!
//! Measures the rebuilt arithmetic core (cached backend dispatch, Barrett
//! reduction, batched syndrome kernel, stepping Chien / ladder-reusing trace
//! split) against the seed's reference path (per-call CPU feature detection,
//! bit-at-a-time reduction, serial per-element Horner chains) on the three
//! paper-relevant workloads:
//!
//! * single field multiplications for m ∈ {11, 16, 32},
//! * `sketch_set` with n = 10^5 elements and t = 100 (PinSketch encode), and
//! * `decode` of a d = 100 difference over GF(2^32) (PinSketch decode).
//!
//! Run with `cargo run --release -p bench --bin bench_gf_bch`.

use bch::BchCodec;
use gf::{BackendChoice, Field};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`reps` wall-clock time of `f`, in nanoseconds.
fn best_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn mul_pairs(f: &Field, n: u64) -> Vec<(u64, u64)> {
    (0..n)
        .map(|i| {
            let a = (i.wrapping_mul(0x9E3779B97F4A7C15) >> 8) % f.order();
            let b = (i.wrapping_mul(0xC2B2AE3D27D4EB4F) >> 8) % f.order();
            (a.max(1), b.max(1))
        })
        .collect()
}

fn distinct_elements(order: u64, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut x = 0x9E37_79B9u64;
    while out.len() < n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let e = (x % (order - 1)) + 1;
        if seen.insert(e) {
            out.push(e);
        }
    }
    out
}

struct MulRow {
    m: u32,
    backend: &'static str,
    fast_ns: f64,
    reference_ns: f64,
}

fn bench_mul(m: u32) -> MulRow {
    const PAIRS: u64 = 4096;
    const LOOPS: usize = 64;
    let fast = Field::new(m);
    let reference = Field::with_backend(m, BackendChoice::Reference);
    let pairs = mul_pairs(&fast, PAIRS);
    let run = |f: &Field| {
        best_ns(7, || {
            let mut acc = 0u64;
            for _ in 0..LOOPS {
                for &(a, b) in &pairs {
                    acc ^= f.mul(a, b);
                }
            }
            black_box(acc);
        }) / (PAIRS as f64 * LOOPS as f64)
    };
    MulRow {
        m,
        backend: fast.backend_name(),
        fast_ns: run(&fast),
        reference_ns: run(&reference),
    }
}

fn main() {
    let hw = Field::new(32).has_hw_clmul();
    println!("hardware carry-less multiply (PCLMULQDQ): {hw}");

    // --- single multiplications ------------------------------------------
    let mul_rows: Vec<MulRow> = [11u32, 16, 32].into_iter().map(bench_mul).collect();
    for r in &mul_rows {
        println!(
            "gf_mul m={:<2} [{}]: {:>7.2} ns/op fast, {:>7.2} ns/op reference, {:>5.1}x",
            r.m,
            r.backend,
            r.fast_ns,
            r.reference_ns,
            r.reference_ns / r.fast_ns
        );
    }

    // --- sketch_set: n = 1e5, t = 100, m = 32 ----------------------------
    let (n, t, m) = (100_000usize, 100usize, 32u32);
    let elements = distinct_elements(1u64 << m, n);
    let fast_codec = BchCodec::new(m, t);
    let reference_codec = BchCodec::with_field(
        Arc::new(Field::with_backend(m, BackendChoice::Reference)),
        t,
    );
    let sketch_fast_ns = best_ns(3, || {
        black_box(fast_codec.sketch_slice(&elements));
    });
    // The seed's encode loop: one serial Horner chain per element.
    let sketch_reference_ns = best_ns(3, || {
        let mut s = reference_codec.empty_sketch();
        for &e in &elements {
            s.add(e, reference_codec.field());
        }
        black_box(s);
    });
    println!(
        "sketch_set n={n} t={t} m={m}: {:.2} ms fast, {:.2} ms reference, {:.1}x",
        sketch_fast_ns / 1e6,
        sketch_reference_ns / 1e6,
        sketch_reference_ns / sketch_fast_ns
    );

    // --- decode: d = 100, t = 100, m = 32 --------------------------------
    let d = 100usize;
    let diff = &elements[..d];
    let sketch = fast_codec.sketch_slice(diff);
    let mut expect: Vec<u64> = diff.to_vec();
    expect.sort_unstable();
    let decode_fast_ns = best_ns(5, || {
        let mut out = fast_codec
            .decode(&sketch)
            .expect("difference fits capacity");
        out.sort_unstable();
        assert_eq!(out, expect, "fast decode must recover the difference");
    });
    let decode_reference_ns = best_ns(3, || {
        let mut out = reference_codec
            .decode(&sketch)
            .expect("difference fits capacity");
        out.sort_unstable();
        assert_eq!(out, expect, "reference decode must recover the difference");
    });
    println!(
        "decode d={d} t={t} m={m}: {:.2} ms fast, {:.2} ms reference, {:.1}x",
        decode_fast_ns / 1e6,
        decode_reference_ns / 1e6,
        decode_reference_ns / decode_fast_ns
    );

    // --- report ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"gf_bch\",\n");
    let _ = writeln!(json, "  \"hardware_clmul\": {hw},");
    json.push_str("  \"gf_mul\": [\n");
    for (i, r) in mul_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"m\": {}, \"backend\": \"{}\", \"fast_ns_per_op\": {:.3}, \"reference_ns_per_op\": {:.3}, \"speedup\": {:.2}}}",
            r.m,
            r.backend,
            r.fast_ns,
            r.reference_ns,
            r.reference_ns / r.fast_ns
        );
        json.push_str(if i + 1 < mul_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"sketch_set\": {{\"n\": {n}, \"t\": {t}, \"m\": {m}, \"fast_ms\": {:.3}, \"reference_ms\": {:.3}, \"speedup\": {:.2}}},",
        sketch_fast_ns / 1e6,
        sketch_reference_ns / 1e6,
        sketch_reference_ns / sketch_fast_ns
    );
    let _ = writeln!(
        json,
        "  \"decode\": {{\"d\": {d}, \"t\": {t}, \"m\": {m}, \"fast_ms\": {:.3}, \"reference_ms\": {:.3}, \"speedup\": {:.2}}}",
        decode_fast_ns / 1e6,
        decode_reference_ns / 1e6,
        decode_reference_ns / decode_fast_ns
    );
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gf_bch.json");
    std::fs::write(path, &json).expect("write BENCH_gf_bch.json");
    println!("wrote {path}");
}
