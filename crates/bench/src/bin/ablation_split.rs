//! Ablation (§3.2): why a three-way split after a BCH decoding failure?
//!
//! The paper argues a two-way split leaves a much higher conditional
//! probability that some sub-group still exceeds the capacity `t`. This
//! binary computes that conditional probability analytically for 2-, 3- and
//! 4-way splits (given that the parent group exceeded `t`), reproducing the
//! §3.2 numbers (2-way ≈ 1.2e-3, 3-way ≈ 9.5e-10 for δ = 5, t = 13).

use analysis::binomial_pmf;

/// P(some sub-group exceeds t | the parent group has x > t elements and is
/// split uniformly into `ways` sub-groups), averaged over the conditional
/// distribution of x for X ~ Binomial(d, 1/g).
fn overflow_after_split(d: usize, g: usize, t: usize, ways: usize) -> f64 {
    let p = 1.0 / g as f64;
    // Conditional distribution of X given X > t.
    let tail: f64 = (t + 1..=(t + 80).min(d))
        .map(|x| binomial_pmf(d, x, p))
        .sum();
    if tail <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    for x in t + 1..=(t + 80).min(d) {
        let w = binomial_pmf(d, x, p) / tail;
        // P(no sub-group exceeds t): inclusion over multinomial splits; use
        // the union bound complement computed exactly for `ways` groups via
        // the binomial marginal + union bound (tight here since overflow of
        // two sub-groups simultaneously is impossible for x <= 2t).
        let per_group_overflow: f64 = (t + 1..=x)
            .map(|k| binomial_pmf(x, k, 1.0 / ways as f64))
            .sum();
        let some_overflow = (per_group_overflow * ways as f64).min(1.0);
        total += w * some_overflow;
    }
    total
}

fn main() {
    println!("# Ablation (§3.2): split arity after a BCH decoding failure");
    let (d, g) = (1_000usize, 200usize);
    println!("# d = {d}, g = {g}: P(some sub-group still exceeds t | parent exceeded t)");
    println!("{:>4} {:>14} {:>14} {:>14}", "t", "2-way", "3-way", "4-way");
    for &t in &[10usize, 13, 16] {
        println!(
            "{:>4} {:>14.3e} {:>14.3e} {:>14.3e}",
            t,
            overflow_after_split(d, g, t, 2),
            overflow_after_split(d, g, t, 3),
            overflow_after_split(d, g, t, 4),
        );
    }
    println!();
    println!("Paper reference (§3.2, δ = 5, t = 13): ≈ 1.2e-3 for a two-way split versus");
    println!("≈ 9.5e-10 for the three-way split PBS uses; a four-way split buys little more.");
}
