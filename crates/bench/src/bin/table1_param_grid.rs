//! Table 1 / Appendix H: the success-probability lower bound over the
//! (n, t) grid for d = 1000, δ = 5, g = 200, r = 3, and the resulting optimal
//! parameter choice for p0 = 99%.

use analysis::{
    group_success_probability, optimize_parameters_with_model, overall_success_lower_bound,
    SuccessModel, PAPER_CANDIDATE_N,
};

fn main() {
    let (d, delta, g, r, p0) = (1_000usize, 5usize, 200usize, 3u32, 0.99);
    for model in [
        SuccessModel::SplitAware,
        SuccessModel::PessimisticTruncation,
    ] {
        println!("# Table 1 (Appendix H): success-probability lower bound, model = {model:?}");
        println!("# d = {d}, delta = {delta}, g = {g}, r = {r}; '*' marks cells >= p0 = {p0}");
        print!("{:>4}", "t");
        for &n in &PAPER_CANDIDATE_N {
            print!(" {n:>9}");
        }
        println!();
        for t in 8..=17usize {
            print!("{t:>4}");
            for &n in &PAPER_CANDIDATE_N {
                let alpha = group_success_probability(n, t, d, g, r, model);
                let bound = overall_success_lower_bound(alpha, g).max(0.0);
                let marker = if bound >= p0 { "*" } else { " " };
                print!(" {:>7.1}%{marker}", bound * 100.0);
            }
            println!();
        }
        match optimize_parameters_with_model(d, delta, r, p0, model) {
            Ok(opt) => println!(
                "optimal cell: n = {}, t = {}, objective = {:.0} bits, bound = {:.3}%\n",
                opt.n,
                opt.t,
                opt.objective_bits,
                opt.lower_bound * 100.0
            ),
            Err(e) => println!("no feasible cell: {e}\n"),
        }
    }
    println!("Paper reference: the darkened cell of Table 1 is (n, t) = (127, 13) with 99.1%.");
    println!("The split-aware model (the implemented mechanism) is slightly less pessimistic,");
    println!("the truncation model slightly more; the two bracket the paper's numbers.");
}
