//! Figure 1 (a–d): PBS vs PinSketch vs Difference Digest.
//!
//! Sweeps the set-difference cardinality and reports, per scheme: success
//! rate (1a), communication overhead (1b), encoding time (1c) and decoding
//! time (1d). Target success rate 0.99, PBS allowed r = 3 rounds, exactly as
//! §8.1. PinSketch's decoding is quadratic in `d`, so by default it is only
//! run up to `d = 1000` (the paper itself had to stop at 30,000);
//! set `PBS_FIG1_PINSKETCH_MAX_D` to raise the cap.

use bench::{print_header, print_point, run_point, Scale};
use ddigest::DifferenceDigest;
use pbs_core::Pbs;
use pinsketch::PinSketch;
use protocol::{Reconciler, Workload};

fn main() {
    let scale = Scale::default_reduced();
    let pinsketch_max_d: usize = std::env::var("PBS_FIG1_PINSKETCH_MAX_D")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);

    print_header(
        "Figure 1: PBS vs PinSketch vs D.Digest (target success rate 0.99)",
        &scale,
    );

    let pbs = Pbs::paper_default();
    let pinsketch = PinSketch::default();
    let ddigest = DifferenceDigest::default();

    for &d in &scale.d_values {
        let workload = Workload {
            set_size: scale.set_size,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        let schemes: Vec<&dyn Reconciler> = if d <= pinsketch_max_d {
            vec![&pbs, &pinsketch, &ddigest]
        } else {
            vec![&pbs, &ddigest]
        };
        for scheme in schemes {
            let point = run_point(scheme, &workload, scale.trials, 0xF161 + d as u64);
            print_point(&point);
        }
        if d > pinsketch_max_d {
            println!(
                "{:<14} {:>8} (skipped: quadratic decoding; raise PBS_FIG1_PINSKETCH_MAX_D to include)",
                "PinSketch", d
            );
        }
    }
    println!();
    println!("Paper shape targets (§8.1.2): D.Digest ≈ 6× the minimum communication,");
    println!("PBS ≈ 2.1–2.9×, PinSketch ≈ 1.38×; PinSketch decoding time explodes with d");
    println!("while PBS and D.Digest stay roughly linear; PBS has the lowest encoding time.");
}
