//! Figure 2 (a–d): PBS vs Graphene, target success rate 239/240.
//!
//! The workload keeps `B ⊂ A` — the best case for Graphene (§8.2). PBS is
//! tuned for the 239/240 target; Graphene uses its own sizing optimization.

use bench::{print_header, print_point, run_point, Scale};
use graphene::Graphene;
use pbs_core::{Pbs, PbsConfig};
use protocol::{Reconciler, Workload};

fn main() {
    let scale = Scale::default_reduced();
    print_header(
        "Figure 2: PBS vs Graphene (target success rate 239/240)",
        &scale,
    );

    let pbs = Pbs::new(PbsConfig::paper_default().with_target_success(239.0 / 240.0));
    let graphene = Graphene::default();

    for &d in &scale.d_values {
        let workload = Workload {
            set_size: scale.set_size,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        for scheme in [&pbs as &dyn Reconciler, &graphene] {
            let point = run_point(scheme, &workload, scale.trials, 0xF162 + d as u64);
            print_point(&point);
        }
    }
    println!();
    println!("Paper shape targets (§8.2): PBS transmits roughly 1.2–7.4× less than Graphene");
    println!("until d approaches |A|, where Graphene's Bloom filter starts paying off and the");
    println!("curves cross; PBS encodes faster, Graphene decodes somewhat faster.");
}
