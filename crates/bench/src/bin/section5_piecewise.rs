//! §5.3 / Appendix G: expected fraction of the distinct elements reconciled
//! in each round ("piecewise reconciliability"), analytically and measured.

use analysis::expected_round_shares;
use bench::Scale;
use pbs_core::{Pbs, PbsConfig};
use protocol::Workload;

fn main() {
    let (n, t, d, g) = (127usize, 13usize, 1_000usize, 200usize);
    println!("# §5.3: expected share of distinct elements reconciled per round");
    let shares = expected_round_shares(n, t, d, g, 4);
    println!("analytical (n = {n}, t = {t}, d = {d}, g = {g}):");
    for (i, s) in shares.iter().take(4).enumerate() {
        println!("  round {:>2}: {:.6}", i + 1, s);
    }
    println!("  residual: {:.3e}", shares[4]);

    // Empirical counterpart on the reduced-scale workload.
    let scale = Scale::from_env(50_000, 5, &[]);
    let workload = Workload {
        set_size: scale.set_size,
        d,
        universe_bits: 32,
        subset_mode: true,
    };
    let pbs = Pbs::new(PbsConfig::paper_default().unlimited_rounds());
    let mut per_round = [0f64; 6];
    for trial in 0..scale.trials {
        let pair = workload.generate(0x5EC5 + trial);
        let report = pbs.reconcile_with_known_d(&pair.a, &pair.b, d, trial);
        for (i, &count) in report.per_round_recovered.iter().enumerate().take(6) {
            per_round[i] += count as f64;
        }
    }
    let total: f64 = per_round.iter().sum();
    println!(
        "measured   (|A| = {}, {} trials):",
        scale.set_size, scale.trials
    );
    for (i, v) in per_round.iter().take(4).enumerate() {
        println!("  round {:>2}: {:.6}", i + 1, v / total.max(1.0));
    }
    println!();
    println!("Paper reference (§5.3): 0.962, 0.0380, 3.61e-4, 2.86e-6 for rounds 1..4 —");
    println!("the vast majority of the difference reconciles in the first round.");
}
