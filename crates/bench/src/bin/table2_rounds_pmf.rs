//! Table 2 / §J.1: empirical probability mass function of the number of
//! rounds PBS needs to reconcile *all* distinct elements (rounds are not
//! capped at 3 here, unlike Figure 1).

use bench::Scale;
use pbs_core::{Pbs, PbsConfig};
use protocol::{symmetric_difference, Workload};

fn main() {
    let scale = Scale::from_env(50_000, 20, &[10, 100, 1_000]);
    println!("# Table 2 / §J.1: PMF of the number of rounds PBS needs (uncapped)");
    println!(
        "# |A| = {}, trials per point = {}",
        scale.set_size, scale.trials
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "d", "r=1", "r=2", "r=3", "r>=4", "mean r", "success"
    );

    let pbs = Pbs::new(PbsConfig::paper_default().unlimited_rounds());
    for &d in &scale.d_values {
        let workload = Workload {
            set_size: scale.set_size,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        let mut counts = [0u64; 4];
        let mut total_rounds = 0u64;
        let mut successes = 0u64;
        for trial in 0..scale.trials {
            let pair = workload.generate(0x7AB2 + d as u64 * 31 + trial);
            let report = pbs.reconcile_with_known_d(&pair.a, &pair.b, d.max(1), trial);
            let truth = symmetric_difference(&pair.a, &pair.b);
            if report.outcome.matches(&truth) {
                successes += 1;
            }
            let r = report.outcome.rounds;
            total_rounds += r as u64;
            counts[(r.min(4) as usize) - 1] += 1;
        }
        let t = scale.trials as f64;
        println!(
            "{:>8} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>10.2} {:>10.3}",
            d,
            counts[0] as f64 / t,
            counts[1] as f64 / t,
            counts[2] as f64 / t,
            counts[3] as f64 / t,
            total_rounds as f64 / t,
            successes as f64 / t,
        );
    }
    println!();
    println!("Paper reference (Table 2): mass concentrated on rounds 1–2 for small d and on");
    println!("round 2 for large d, with average round counts between 1.2 and 2.2.");
}
