//! Figure 3 (a–d): PBS vs PinSketch/WP (PinSketch with the same partitioning
//! trick as PBS), target success rate 0.99 (§8.3).

use bench::{print_header, print_point, run_point, Scale};
use pbs_core::Pbs;
use pinsketch::PinSketchWp;
use protocol::{Reconciler, Workload};

fn main() {
    let scale = Scale::default_reduced();
    print_header(
        "Figure 3: PBS vs PinSketch/WP (target success rate 0.99)",
        &scale,
    );

    let pbs = Pbs::paper_default();
    let wp = PinSketchWp::default();

    for &d in &scale.d_values {
        let workload = Workload {
            set_size: scale.set_size,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        for scheme in [&pbs as &dyn Reconciler, &wp] {
            let point = run_point(scheme, &workload, scale.trials, 0xF163 + d as u64);
            print_point(&point);
        }
    }
    println!();
    println!("Paper shape target (§8.3): PinSketch/WP pays its BCH safety margin in log|U|-bit");
    println!("units instead of log n-bit units, so its communication sits above PBS at every d;");
    println!("its computation is in the same O(d) class but with larger constants (GF(2^32)).");
}
