//! §5.2: how the optimal per-group communication overhead changes with the
//! target number of rounds r (d = 1000, δ = 5, p0 = 0.99).

use analysis::optimize_parameters;

fn main() {
    let (d, delta, p0, universe_bits) = (1_000usize, 5usize, 0.99, 32u32);
    println!("# §5.2: optimal per-group-pair communication vs target rounds r");
    println!(
        "{:>4} {:>8} {:>6} {:>18} {:>22}",
        "r", "n", "t", "objective (bits)", "per-group total (bits)"
    );
    for r in 1..=4u32 {
        match optimize_parameters(d, delta, r, p0) {
            Ok(opt) => println!(
                "{:>4} {:>8} {:>6} {:>18.0} {:>22.0}",
                r,
                opt.n,
                opt.t,
                opt.objective_bits,
                opt.first_round_bits_per_group(delta, universe_bits)
            ),
            Err(e) => println!("{r:>4} no feasible parameters: {e}"),
        }
    }
    println!();
    println!("Paper reference (§5.2): 591, 402, 318 and 288 bits for r = 1..4; the drop");
    println!("flattens after r = 3, which is why the paper fixes r = 3.");
}
