//! CI bench-regression gate.
//!
//! Usage:
//!
//! ```text
//! check_bench <baseline.json> <current.json> [<baseline2.json> <current2.json> ...]
//! ```
//!
//! Each pair is a committed baseline report and the freshly emitted report
//! of the same benchmark binary (`bench_gf_bch` → `BENCH_gf_bch.json`,
//! `bench_decode_path` → `BENCH_decode_path.json`). Two metric classes are
//! compared by structural path: the wall-clock cost of the optimized path
//! (`fast_ns_per_op` / `fast_ms`, lower is better — meaningful on the
//! machine the baseline was recorded on) and the same-run fast-vs-reference
//! `speedup` ratios (higher is better — robust across machines, since both
//! sides are measured in the same process). Any metric degrading beyond
//! the tolerance fails the gate.
//!
//! The tolerance is 25% by default and can be widened for noisy runners via
//! `BENCH_GATE_TOLERANCE` (fractional: `0.40` allows 40% slowdown).
//! Exit code: 0 when every metric passes, 1 on any regression or report
//! mismatch.

use bench::gate;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        return Err("usage: check_bench <baseline.json> <current.json> [...more pairs]".into());
    }
    let tolerance = gate::tolerance_from_env();
    // Absolute times are only comparable on the machine that recorded the
    // baselines; BENCH_GATE_TIME_METRICS=off demotes them to informational
    // rows (CI sets this — shared runners gate on the same-run speedup
    // ratios alone).
    let gate_times = std::env::var("BENCH_GATE_TIME_METRICS")
        .map(|v| v != "off")
        .unwrap_or(true);
    println!(
        "bench gate: tolerance {:.0}% degradation, absolute-time metrics {}",
        tolerance * 100.0,
        if gate_times { "gated" } else { "informational" }
    );

    let mut ok = true;
    for pair in args.chunks(2) {
        let (base_path, cur_path) = (&pair[0], &pair[1]);
        let read =
            |p: &String| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
        let baseline = gate::parse(&read(base_path)?).map_err(|e| format!("{base_path}: {e}"))?;
        let current = gate::parse(&read(cur_path)?).map_err(|e| format!("{cur_path}: {e}"))?;
        println!("\n{base_path} vs {cur_path}:");
        let comparisons = gate::compare(&baseline, &current, tolerance)?;
        for c in &comparisons {
            let gated = gate_times || c.kind != gate::MetricKind::Time;
            let status = match (c.regressed, gated) {
                (true, true) => "REGRESSED",
                (true, false) => "info-only",
                _ => "ok",
            };
            println!(
                "  {status:>9}  {:<40} baseline {:>10.3}  current {:>10.3}  ({:+.1}% worse)",
                c.path,
                c.baseline,
                c.current,
                (c.ratio - 1.0) * 100.0
            );
            ok &= !(c.regressed && gated);
        }
    }
    Ok(ok)
}

fn main() {
    match run() {
        Ok(true) => println!("\nbench gate: PASS"),
        Ok(false) => {
            println!("\nbench gate: FAIL (metric slower than baseline beyond tolerance)");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench gate error: {e}");
            std::process::exit(1);
        }
    }
}
