//! Figure 4 (a–d) / §J.2: PBS as a function of δ (average distinct elements
//! per group), d = 10,000 in the paper. δ controls the communication ↔
//! computation trade-off: larger δ lowers communication but raises encoding
//! and decoding time.

use bench::{run_point, Scale};
use pbs_core::{Pbs, PbsConfig};
use protocol::Workload;

fn main() {
    let scale = Scale::from_env(50_000, 3, &[]);
    let d: usize = std::env::var("PBS_FIG4_D")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let deltas: Vec<usize> = std::env::var("PBS_FIG4_DELTAS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![3, 5, 8, 12, 16, 21, 30]);

    println!("# Figure 4 / §J.2: PBS vs δ (d = {d}, target success rate 0.99, r = 3)");
    println!(
        "# |A| = {}, trials per point = {}",
        scale.set_size, scale.trials
    );
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "delta", "success", "comm (KB)", "x-minimum", "encode (s)", "decode (s)", "rounds"
    );

    let workload = Workload {
        set_size: scale.set_size,
        d,
        universe_bits: 32,
        subset_mode: true,
    };
    for &delta in &deltas {
        let pbs = Pbs::new(PbsConfig::paper_default().with_delta(delta));
        let point = run_point(&pbs, &workload, scale.trials, 0xF164 + delta as u64);
        println!(
            "{:<8} {:>10.4} {:>12.3} {:>10.2} {:>12.6} {:>12.6} {:>8.2}",
            delta,
            point.success_rate,
            point.mean_comm_kb,
            point.comm_over_minimum,
            point.mean_encode_s,
            point.mean_decode_s,
            point.mean_rounds
        );
    }
    println!();
    println!("Paper shape target (§J.2): communication decreases as δ grows while encoding and");
    println!("decoding time increase — δ is the knob trading communication for computation.");
}
