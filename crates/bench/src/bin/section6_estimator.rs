//! §6 / Appendix A–B: the Tug-of-War estimator — unbiasedness, the
//! Pr[d ≤ 1.38·d̂] coverage guarantee, and the size comparison against the
//! Strata and min-wise estimators.

use estimator::{
    Estimator, MinWiseEstimator, StrataEstimator, TowEstimator, RECOMMENDED_INFLATION,
};
use protocol::Workload;

fn build_pair<E: Estimator + Clone>(proto: &E, a: &[u64], b: &[u64]) -> (E, E) {
    let mut ea = proto.clone();
    let mut eb = proto.clone();
    for &x in a {
        ea.insert(x);
    }
    for &x in b {
        eb.insert(x);
    }
    (ea, eb)
}

fn main() {
    let trials = std::env::var("PBS_BENCH_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60u64);
    let set_size = 20_000usize;
    println!("# §6: ToW estimator accuracy and size (trials per d = {trials})");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "d", "mean d-hat", "rel. bias", "P[d<=1.38d^]", "mean gamma-est"
    );
    for &d in &[10usize, 100, 1_000, 10_000] {
        let workload = Workload {
            set_size,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        let mut sum = 0.0;
        let mut covered = 0u64;
        let mut inflated = 0.0;
        for trial in 0..trials {
            let pair = workload.generate(0xE571 + d as u64 + trial * 7);
            let (ea, eb) = build_pair(&TowEstimator::paper_default(trial), &pair.a, &pair.b);
            let est = ea.estimate(&eb);
            sum += est;
            inflated += est * RECOMMENDED_INFLATION;
            if (d as f64) <= est * RECOMMENDED_INFLATION {
                covered += 1;
            }
        }
        let mean = sum / trials as f64;
        println!(
            "{:>8} {:>12.1} {:>12.4} {:>14.3} {:>14.1}",
            d,
            mean,
            (mean - d as f64) / d as f64,
            covered as f64 / trials as f64,
            inflated / trials as f64
        );
    }

    // Size comparison (Appendix B).
    let workload = Workload {
        set_size,
        d: 100,
        universe_bits: 32,
        subset_mode: true,
    };
    let pair = workload.generate(7);
    let (tow, _) = build_pair(&TowEstimator::paper_default(1), &pair.a, &pair.b);
    let (strata, _) = build_pair(&StrataEstimator::new(32, 1), &pair.a, &pair.b);
    let (minwise, _) = build_pair(&MinWiseEstimator::new(128, 1), &pair.a, &pair.b);
    println!();
    println!("estimator sizes for |A| = {set_size} (bytes on the wire):");
    println!(
        "  ToW (128 sketches):     {:>8}",
        tow.wire_bits().div_ceil(8)
    );
    println!(
        "  Strata (32 x 80 cells): {:>8}",
        strata.wire_bits().div_ceil(8)
    );
    println!(
        "  Min-wise (128 hashes):  {:>8}",
        minwise.wire_bits().div_ceil(8)
    );
    println!();
    println!("Paper reference (§6): 128 ToW sketches cost 336 bytes and guarantee");
    println!("Pr[d <= 1.38 d-hat] >= 99%; the Strata estimator is an order of magnitude larger.");
}
