//! Ablation (§2.2.3 / §2.3): the verification machinery.
//!
//! Two questions the paper argues analytically, answered empirically here:
//!
//! 1. How often do the type (I)/(II) exceptions actually occur, and how often
//!    does the Procedure 3 sub-universe check catch a fake element?
//! 2. How likely is a *false verification* (checksum collision) — the paper
//!    bounds it by `P(exception) × 2^-32 ≈ 10^-12`, so the empirical count
//!    must be zero while the checksum keeps catching every real exception.

use bench::Scale;
use pbs_core::{Pbs, PbsConfig};
use protocol::{symmetric_difference, Workload};

fn main() {
    let scale = Scale::from_env(20_000, 30, &[100, 1_000]);
    println!("# Ablation: exception frequency and checksum verification (uncapped rounds)");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>14} {:>12}",
        "d", "trials", "multi-round", "bch failures", "fakes caught", "mismatches"
    );
    let pbs = Pbs::new(PbsConfig::paper_default().unlimited_rounds());
    for &d in &scale.d_values {
        let workload = Workload {
            set_size: scale.set_size,
            d,
            universe_bits: 32,
            subset_mode: true,
        };
        let mut multi_round = 0u64;
        let mut bch_failures = 0u64;
        let mut fakes = 0u64;
        let mut mismatches = 0u64;
        for trial in 0..scale.trials {
            let pair = workload.generate(0xAB1A + d as u64 * 13 + trial);
            let report = pbs.reconcile_with_known_d(&pair.a, &pair.b, d.max(1), trial);
            if report.outcome.rounds > 1 {
                multi_round += 1;
            }
            bch_failures += report.decode_failures as u64;
            fakes += report.fakes_rejected;
            // A mismatch would mean the checksum verified but the recovered
            // difference is wrong — the false-verification event the paper
            // bounds at ~1e-12.
            if report.outcome.claimed_success
                && !report
                    .outcome
                    .matches(&symmetric_difference(&pair.a, &pair.b))
            {
                mismatches += 1;
            }
        }
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>14} {:>12}",
            d, scale.trials, multi_round, bch_failures, fakes, mismatches
        );
    }
    println!();
    println!("Expectation: mismatches must be 0 (false verification probability ~1e-12);");
    println!("multi-round runs occur at roughly the 1 - P(ideal across all groups) rate, and");
    println!("fakes caught stays tiny (type II exceptions are rare, §2.3).");
}
