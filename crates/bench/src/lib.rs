//! Shared experiment harness used by the figure/table regeneration binaries
//! and the Criterion benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index) by running [`Reconciler`] implementations
//! on [`protocol::Workload`] instances and aggregating the paper's two
//! metrics: communication overhead and encode/decode time, plus the success
//! rate against ground truth.
//!
//! ## Scale knobs
//!
//! The paper runs `|A| = 10^6`, `d ∈ [10, 10^5]`, 1,000 trials per point on a
//! dedicated workstation. A full-fidelity run is possible here too but takes
//! hours (PinSketch alone is quadratic in `d`), so the binaries default to a
//! reduced-but-same-shape scale and honour these environment variables:
//!
//! * `PBS_BENCH_SET_SIZE` — `|A|` (default 50,000)
//! * `PBS_BENCH_TRIALS` — trials per point (default 5)
//! * `PBS_BENCH_D_VALUES` — comma-separated list of `d` values
//! * `PBS_BENCH_FULL=1` — paper-scale defaults (10^6 elements, 100 trials)
//!
//! EXPERIMENTS.md records which scale produced the committed numbers.

#![warn(missing_docs)]

use protocol::{symmetric_difference, Reconciler, Workload};
use std::time::Duration;

/// Scale parameters for one experiment sweep.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Cardinality of Alice's set.
    pub set_size: usize,
    /// Number of independent (A, B) instances per point.
    pub trials: u64,
    /// The set-difference cardinalities to sweep.
    pub d_values: Vec<usize>,
}

impl Scale {
    /// Resolve the scale from the environment, starting from the given
    /// defaults (see the crate docs for the variables).
    pub fn from_env(default_set_size: usize, default_trials: u64, default_d: &[usize]) -> Self {
        let full = std::env::var("PBS_BENCH_FULL")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut scale = if full {
            Scale {
                set_size: 1_000_000,
                trials: 100,
                d_values: vec![10, 100, 1_000, 10_000, 100_000],
            }
        } else {
            Scale {
                set_size: default_set_size,
                trials: default_trials,
                d_values: default_d.to_vec(),
            }
        };
        if let Ok(v) = std::env::var("PBS_BENCH_SET_SIZE") {
            if let Ok(n) = v.parse() {
                scale.set_size = n;
            }
        }
        if let Ok(v) = std::env::var("PBS_BENCH_TRIALS") {
            if let Ok(n) = v.parse() {
                scale.trials = n;
            }
        }
        if let Ok(v) = std::env::var("PBS_BENCH_D_VALUES") {
            let ds: Vec<usize> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
            if !ds.is_empty() {
                scale.d_values = ds;
            }
        }
        scale
    }

    /// The default reduced scale used by the figure binaries.
    pub fn default_reduced() -> Self {
        Self::from_env(50_000, 5, &[10, 100, 1_000])
    }
}

/// Aggregated measurements for one scheme at one `d` value.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Scheme name.
    pub scheme: &'static str,
    /// Set-difference cardinality of the workload.
    pub d: usize,
    /// Number of trials aggregated.
    pub trials: u64,
    /// Fraction of trials in which the recovered difference matched ground
    /// truth exactly (the paper's "success rate").
    pub success_rate: f64,
    /// Mean total communication in kilobytes.
    pub mean_comm_kb: f64,
    /// Mean encode time in seconds.
    pub mean_encode_s: f64,
    /// Mean decode time in seconds.
    pub mean_decode_s: f64,
    /// Mean number of protocol rounds.
    pub mean_rounds: f64,
    /// Communication overhead relative to the theoretical minimum
    /// `d·log|U|`.
    pub comm_over_minimum: f64,
}

/// Run `scheme` on `trials` independent instances of the workload and
/// aggregate the paper's metrics.
pub fn run_point(
    scheme: &dyn Reconciler,
    workload: &Workload,
    trials: u64,
    base_seed: u64,
) -> ExperimentPoint {
    let mut successes = 0u64;
    let mut comm_bytes = 0f64;
    let mut encode = Duration::ZERO;
    let mut decode = Duration::ZERO;
    let mut rounds = 0f64;
    for trial in 0..trials {
        let seed = base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(trial);
        let pair = workload.generate(seed);
        let outcome = scheme.reconcile(&pair.a, &pair.b, seed ^ 0x5EED);
        let truth = symmetric_difference(&pair.a, &pair.b);
        if outcome.matches(&truth) {
            successes += 1;
        }
        comm_bytes += outcome.comm.total_bytes() as f64;
        encode += outcome.timing.encode;
        decode += outcome.timing.decode;
        rounds += outcome.rounds as f64;
    }
    let t = trials as f64;
    let mean_comm = comm_bytes / t;
    let minimum = protocol::theoretical_minimum_bytes(workload.d.max(1), workload.universe_bits);
    ExperimentPoint {
        scheme: scheme.name(),
        d: workload.d,
        trials,
        success_rate: successes as f64 / t,
        mean_comm_kb: mean_comm / 1000.0,
        mean_encode_s: encode.as_secs_f64() / t,
        mean_decode_s: decode.as_secs_f64() / t,
        mean_rounds: rounds / t,
        comm_over_minimum: mean_comm / minimum,
    }
}

/// Print a header for the standard comparison table.
pub fn print_header(title: &str, scale: &Scale) {
    println!("# {title}");
    println!(
        "# |A| = {}, trials per point = {}, universe = 32-bit",
        scale.set_size, scale.trials
    );
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "scheme", "d", "success", "comm (KB)", "x-minimum", "encode (s)", "decode (s)", "rounds"
    );
}

/// Print one aggregated point as a table row.
pub fn print_point(p: &ExperimentPoint) {
    println!(
        "{:<14} {:>8} {:>10.4} {:>12.3} {:>10.2} {:>12.6} {:>12.6} {:>8.2}",
        p.scheme,
        p.d,
        p.success_rate,
        p.mean_comm_kb,
        p.comm_over_minimum,
        p.mean_encode_s,
        p.mean_decode_s,
        p.mean_rounds
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_core::Pbs;

    #[test]
    fn run_point_aggregates_sane_values() {
        let workload = Workload {
            set_size: 2_000,
            d: 20,
            universe_bits: 32,
            subset_mode: true,
        };
        let p = run_point(&Pbs::paper_default(), &workload, 3, 1);
        assert_eq!(p.scheme, "PBS");
        assert_eq!(p.d, 20);
        assert_eq!(p.trials, 3);
        assert!(p.success_rate > 0.0);
        assert!(p.mean_comm_kb > 0.0);
        assert!(p.comm_over_minimum > 1.0);
        assert!(p.mean_rounds >= 1.0);
    }

    #[test]
    fn scale_from_env_defaults() {
        let s = Scale::from_env(1234, 7, &[1, 2, 3]);
        // Environment variables may be absent in the test environment; the
        // defaults must then carry through.
        if std::env::var("PBS_BENCH_SET_SIZE").is_err() && std::env::var("PBS_BENCH_FULL").is_err()
        {
            assert_eq!(s.set_size, 1234);
            assert_eq!(s.trials, 7);
            assert_eq!(s.d_values, vec![1, 2, 3]);
        }
    }
}
