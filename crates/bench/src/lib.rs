//! Shared experiment harness used by the figure/table regeneration binaries
//! and the Criterion benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index) by running [`Reconciler`] implementations
//! on [`protocol::Workload`] instances and aggregating the paper's two
//! metrics: communication overhead and encode/decode time, plus the success
//! rate against ground truth.
//!
//! ## Scale knobs
//!
//! The paper runs `|A| = 10^6`, `d ∈ [10, 10^5]`, 1,000 trials per point on a
//! dedicated workstation. A full-fidelity run is possible here too but takes
//! hours (PinSketch alone is quadratic in `d`), so the binaries default to a
//! reduced-but-same-shape scale and honour these environment variables:
//!
//! * `PBS_BENCH_SET_SIZE` — `|A|` (default 50,000)
//! * `PBS_BENCH_TRIALS` — trials per point (default 5)
//! * `PBS_BENCH_D_VALUES` — comma-separated list of `d` values
//! * `PBS_BENCH_FULL=1` — paper-scale defaults (10^6 elements, 100 trials)
//!
//! EXPERIMENTS.md records which scale produced the committed numbers.

#![warn(missing_docs)]

use protocol::{symmetric_difference, Reconciler, Workload};
use std::time::Duration;

/// Scale parameters for one experiment sweep.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Cardinality of Alice's set.
    pub set_size: usize,
    /// Number of independent (A, B) instances per point.
    pub trials: u64,
    /// The set-difference cardinalities to sweep.
    pub d_values: Vec<usize>,
}

impl Scale {
    /// Resolve the scale from the environment, starting from the given
    /// defaults (see the crate docs for the variables).
    pub fn from_env(default_set_size: usize, default_trials: u64, default_d: &[usize]) -> Self {
        let full = std::env::var("PBS_BENCH_FULL")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut scale = if full {
            Scale {
                set_size: 1_000_000,
                trials: 100,
                d_values: vec![10, 100, 1_000, 10_000, 100_000],
            }
        } else {
            Scale {
                set_size: default_set_size,
                trials: default_trials,
                d_values: default_d.to_vec(),
            }
        };
        if let Ok(v) = std::env::var("PBS_BENCH_SET_SIZE") {
            if let Ok(n) = v.parse() {
                scale.set_size = n;
            }
        }
        if let Ok(v) = std::env::var("PBS_BENCH_TRIALS") {
            if let Ok(n) = v.parse() {
                scale.trials = n;
            }
        }
        if let Ok(v) = std::env::var("PBS_BENCH_D_VALUES") {
            let ds: Vec<usize> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
            if !ds.is_empty() {
                scale.d_values = ds;
            }
        }
        scale
    }

    /// The default reduced scale used by the figure binaries.
    pub fn default_reduced() -> Self {
        Self::from_env(50_000, 5, &[10, 100, 1_000])
    }
}

/// Aggregated measurements for one scheme at one `d` value.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Scheme name.
    pub scheme: &'static str,
    /// Set-difference cardinality of the workload.
    pub d: usize,
    /// Number of trials aggregated.
    pub trials: u64,
    /// Fraction of trials in which the recovered difference matched ground
    /// truth exactly (the paper's "success rate").
    pub success_rate: f64,
    /// Mean total communication in kilobytes.
    pub mean_comm_kb: f64,
    /// Mean encode time in seconds.
    pub mean_encode_s: f64,
    /// Mean decode time in seconds.
    pub mean_decode_s: f64,
    /// Mean number of protocol rounds.
    pub mean_rounds: f64,
    /// Communication overhead relative to the theoretical minimum
    /// `d·log|U|`.
    pub comm_over_minimum: f64,
}

/// Run `scheme` on `trials` independent instances of the workload and
/// aggregate the paper's metrics.
pub fn run_point(
    scheme: &dyn Reconciler,
    workload: &Workload,
    trials: u64,
    base_seed: u64,
) -> ExperimentPoint {
    let mut successes = 0u64;
    let mut comm_bytes = 0f64;
    let mut encode = Duration::ZERO;
    let mut decode = Duration::ZERO;
    let mut rounds = 0f64;
    for trial in 0..trials {
        let seed = base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(trial);
        let pair = workload.generate(seed);
        let outcome = scheme.reconcile(&pair.a, &pair.b, seed ^ 0x5EED);
        let truth = symmetric_difference(&pair.a, &pair.b);
        if outcome.matches(&truth) {
            successes += 1;
        }
        comm_bytes += outcome.comm.total_bytes() as f64;
        encode += outcome.timing.encode;
        decode += outcome.timing.decode;
        rounds += outcome.rounds as f64;
    }
    let t = trials as f64;
    let mean_comm = comm_bytes / t;
    let minimum = protocol::theoretical_minimum_bytes(workload.d.max(1), workload.universe_bits);
    ExperimentPoint {
        scheme: scheme.name(),
        d: workload.d,
        trials,
        success_rate: successes as f64 / t,
        mean_comm_kb: mean_comm / 1000.0,
        mean_encode_s: encode.as_secs_f64() / t,
        mean_decode_s: decode.as_secs_f64() / t,
        mean_rounds: rounds / t,
        comm_over_minimum: mean_comm / minimum,
    }
}

/// Print a header for the standard comparison table.
pub fn print_header(title: &str, scale: &Scale) {
    println!("# {title}");
    println!(
        "# |A| = {}, trials per point = {}, universe = 32-bit",
        scale.set_size, scale.trials
    );
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "scheme", "d", "success", "comm (KB)", "x-minimum", "encode (s)", "decode (s)", "rounds"
    );
}

/// Print one aggregated point as a table row.
pub fn print_point(p: &ExperimentPoint) {
    println!(
        "{:<14} {:>8} {:>10.4} {:>12.3} {:>10.2} {:>12.6} {:>12.6} {:>8.2}",
        p.scheme,
        p.d,
        p.success_rate,
        p.mean_comm_kb,
        p.comm_over_minimum,
        p.mean_encode_s,
        p.mean_decode_s,
        p.mean_rounds
    );
}

/// The CI bench-regression gate: a dependency-free JSON reader and the
/// baseline-vs-current comparison the `check_bench` binary runs.
///
/// The two benchmark binaries (`bench_gf_bch`, `bench_decode_path`) emit
/// flat JSON reports with two classes of *tracked metrics*: wall-clock
/// costs of the optimized path (`fast_ns_per_op` / `fast_ms`, lower is
/// better) and same-run fast-vs-reference `speedup` ratios (higher is
/// better, and robust across machines). `compare` pairs each tracked
/// metric of the committed baseline with the freshly emitted report by its
/// structural path (e.g. `gf_mul[2].fast_ns_per_op`) and flags any that
/// degraded beyond the tolerance (default 25%, `BENCH_GATE_TOLERANCE`
/// overrides).
pub mod gate {
    /// A parsed JSON value. Only what the bench reports need: numbers are
    /// `f64`, object key order is preserved.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (parsed as `f64`)
        Num(f64),
        /// A string
        Str(String),
        /// An array
        Arr(Vec<Json>),
        /// An object, key order preserved
        Obj(Vec<(String, Json)>),
    }

    /// Parse a JSON document. Errors carry the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    expect(b, pos, b':')?;
                    let val = parse_value(b, pos)?;
                    fields.push((key, val));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Json::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Json::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                s.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| format!("invalid number {s:?} at byte {start}"))
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        other => other as char,
                    });
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }

    /// Walk a document and collect every numeric leaf with its structural
    /// path (`section.field`, arrays indexed as `section[3].field`).
    pub fn numeric_leaves(json: &Json) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        collect(json, String::new(), &mut out);
        out
    }

    fn collect(json: &Json, path: String, out: &mut Vec<(String, f64)>) {
        match json {
            Json::Num(v) => out.push((path, *v)),
            Json::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    collect(item, format!("{path}[{i}]"), out);
                }
            }
            Json::Obj(fields) => {
                for (k, v) in fields {
                    let p = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    collect(v, p, out);
                }
            }
            _ => {}
        }
    }

    /// How a tracked metric regresses.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum MetricKind {
        /// Absolute wall-clock of the optimized path (`fast_ms`,
        /// `fast_ns_per_op`): lower is better. Comparable across runs on
        /// the *same* machine; cross-machine runs need a wide tolerance.
        Time,
        /// Same-run fast-vs-reference ratio (`speedup`): higher is better.
        /// Both sides of the ratio are measured in the same process on the
        /// same machine, so this stays meaningful when the gate runs on a
        /// different box than the one that recorded the baseline.
        Speedup,
    }

    /// Classify a numeric leaf as a tracked performance metric.
    pub fn tracked_metric(path: &str) -> Option<MetricKind> {
        if path.ends_with("fast_ns_per_op") || path.ends_with("fast_ms") {
            Some(MetricKind::Time)
        } else if path.ends_with("speedup") {
            Some(MetricKind::Speedup)
        } else {
            None
        }
    }

    /// One tracked metric compared between baseline and current run.
    #[derive(Debug, Clone)]
    pub struct Comparison {
        /// Structural path of the metric inside the report.
        pub path: String,
        /// Which way this metric regresses.
        pub kind: MetricKind,
        /// Committed baseline value.
        pub baseline: f64,
        /// Freshly measured value.
        pub current: f64,
        /// Degradation factor, normalized so `> 1` always means worse
        /// (`current / baseline` for times, `baseline / current` for
        /// speedups).
        pub ratio: f64,
        /// `true` when the degradation exceeds the tolerance.
        pub regressed: bool,
    }

    /// Compare every tracked metric of `baseline` against `current`.
    /// `tolerance` is the allowed fractional degradation (0.25 = 25%
    /// slower, or a 25% smaller speedup ratio). A tracked baseline metric
    /// missing from the current report is an error: a silently dropped
    /// metric must not pass the gate.
    pub fn compare(
        baseline: &Json,
        current: &Json,
        tolerance: f64,
    ) -> Result<Vec<Comparison>, String> {
        let cur: std::collections::HashMap<String, f64> =
            numeric_leaves(current).into_iter().collect();
        let mut out = Vec::new();
        for (path, base) in numeric_leaves(baseline) {
            let Some(kind) = tracked_metric(&path) else {
                continue;
            };
            let Some(&now) = cur.get(&path) else {
                return Err(format!("tracked metric {path} missing from current report"));
            };
            let ratio = match kind {
                // A non-positive baseline time cannot gate anything — the
                // committed report is broken and must be regenerated, not
                // silently skipped.
                MetricKind::Time if base <= 0.0 => {
                    return Err(format!(
                        "baseline metric {path} is {base}, cannot gate against it"
                    ));
                }
                MetricKind::Time => now / base,
                // A current speedup that rounds to zero is a total fast-path
                // collapse: infinitely worse, never "unchanged".
                MetricKind::Speedup if now <= 0.0 => f64::INFINITY,
                MetricKind::Speedup => base / now,
            };
            out.push(Comparison {
                path,
                kind,
                baseline: base,
                current: now,
                ratio,
                regressed: ratio > 1.0 + tolerance,
            });
        }
        if out.is_empty() {
            return Err("baseline report contains no tracked metrics".into());
        }
        Ok(out)
    }

    /// The gate tolerance: `BENCH_GATE_TOLERANCE` (fractional, e.g. `0.4`)
    /// or the default 25%.
    pub fn tolerance_from_env() -> f64 {
        std::env::var("BENCH_GATE_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|t| *t >= 0.0)
            .unwrap_or(0.25)
    }
}

#[cfg(test)]
mod gate_tests {
    use super::gate::{self, Json};

    const REPORT: &str = r#"{
      "bench": "demo", "hardware_clmul": true,
      "gf_mul": [
        {"m": 11, "backend": "tables", "fast_ns_per_op": 1.0, "reference_ns_per_op": 30.0, "speedup": 30.0},
        {"m": 32, "backend": "clmul-barrett", "fast_ns_per_op": 5.0, "reference_ns_per_op": 100.0, "speedup": 20.0}
      ],
      "decode": {"d": 100, "fast_ms": 5.5, "reference_ms": 61.0, "speedup": 11.09}
    }"#;

    #[test]
    fn parses_and_flattens_reports() {
        let doc = gate::parse(REPORT).unwrap();
        let leaves = gate::numeric_leaves(&doc);
        let get = |p: &str| leaves.iter().find(|(k, _)| k == p).map(|(_, v)| *v);
        assert_eq!(get("gf_mul[0].m"), Some(11.0));
        assert_eq!(get("gf_mul[1].fast_ns_per_op"), Some(5.0));
        assert_eq!(get("decode.fast_ms"), Some(5.5));
        assert!(matches!(doc, Json::Obj(_)));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(gate::parse("{\"a\": ").is_err());
        assert!(gate::parse("{\"a\": 1} trailing").is_err());
        assert!(gate::parse("[1, ]").is_err());
    }

    #[test]
    fn compare_flags_only_excessive_slowdowns() {
        let base = gate::parse(REPORT).unwrap();
        let current = gate::parse(
            &REPORT
                .replace("\"fast_ns_per_op\": 1.0", "\"fast_ns_per_op\": 1.2") // +20%: ok
                .replace("\"fast_ms\": 5.5", "\"fast_ms\": 9.9"), // +80%: regression
        )
        .unwrap();
        let cmp = gate::compare(&base, &current, 0.25).unwrap();
        assert_eq!(cmp.len(), 6, "three time metrics + three speedup ratios");
        let by_path = |p: &str| cmp.iter().find(|c| c.path.ends_with(p)).unwrap();
        assert!(!by_path("gf_mul[0].fast_ns_per_op").regressed);
        assert!(!by_path("gf_mul[1].fast_ns_per_op").regressed);
        assert!(by_path("decode.fast_ms").regressed);
        assert!(!by_path("decode.speedup").regressed, "ratio did not move");
        // Getting *faster* never trips the gate.
        let faster = gate::parse(&REPORT.replace("\"fast_ms\": 5.5", "\"fast_ms\": 0.5")).unwrap();
        assert!(gate::compare(&base, &faster, 0.25)
            .unwrap()
            .iter()
            .all(|c| !c.regressed));
    }

    #[test]
    fn compare_flags_collapsed_speedup_ratio() {
        // The machine-robust check: even if absolute times pass (e.g. the
        // gate runs on a faster machine), a collapsed same-run
        // fast-vs-reference ratio is a regression.
        let base = gate::parse(REPORT).unwrap();
        let collapsed = gate::parse(
            &REPORT
                .replace("\"fast_ms\": 5.5", "\"fast_ms\": 5.0") // faster in absolute terms
                .replace("\"speedup\": 11.09", "\"speedup\": 4.0"), // ratio collapsed
        )
        .unwrap();
        let cmp = gate::compare(&base, &collapsed, 0.25).unwrap();
        let by_path = |p: &str| cmp.iter().find(|c| c.path.ends_with(p)).unwrap();
        assert!(!by_path("decode.fast_ms").regressed);
        assert!(by_path("decode.speedup").regressed);
        assert_eq!(by_path("decode.speedup").kind, gate::MetricKind::Speedup);
        // A *larger* speedup is fine.
        let better =
            gate::parse(&REPORT.replace("\"speedup\": 11.09", "\"speedup\": 20.0")).unwrap();
        assert!(gate::compare(&base, &better, 0.25)
            .unwrap()
            .iter()
            .all(|c| !c.regressed));
    }

    #[test]
    fn degenerate_values_never_slip_through() {
        let base = gate::parse(REPORT).unwrap();
        // A speedup that rounds to 0.00 is a total collapse, not "no change".
        let collapsed =
            gate::parse(&REPORT.replace("\"speedup\": 11.09", "\"speedup\": 0.00")).unwrap();
        let cmp = gate::compare(&base, &collapsed, 0.25).unwrap();
        let c = cmp.iter().find(|c| c.path == "decode.speedup").unwrap();
        assert!(c.regressed && c.ratio.is_infinite());
        // A zero baseline time is a broken report, not a free pass.
        let zero_base =
            gate::parse(&REPORT.replace("\"fast_ms\": 5.5", "\"fast_ms\": 0.0")).unwrap();
        assert!(gate::compare(&zero_base, &base, 0.25).is_err());
    }

    #[test]
    fn compare_errors_on_missing_tracked_metric() {
        let base = gate::parse(REPORT).unwrap();
        let missing = gate::parse(&REPORT.replace("\"fast_ms\": 5.5, ", "")).unwrap();
        assert!(gate::compare(&base, &missing, 0.25).is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_core::Pbs;

    #[test]
    fn run_point_aggregates_sane_values() {
        let workload = Workload {
            set_size: 2_000,
            d: 20,
            universe_bits: 32,
            subset_mode: true,
        };
        let p = run_point(&Pbs::paper_default(), &workload, 3, 1);
        assert_eq!(p.scheme, "PBS");
        assert_eq!(p.d, 20);
        assert_eq!(p.trials, 3);
        assert!(p.success_rate > 0.0);
        assert!(p.mean_comm_kb > 0.0);
        assert!(p.comm_over_minimum > 1.0);
        assert!(p.mean_rounds >= 1.0);
    }

    #[test]
    fn scale_from_env_defaults() {
        let s = Scale::from_env(1234, 7, &[1, 2, 3]);
        // Environment variables may be absent in the test environment; the
        // defaults must then carry through.
        if std::env::var("PBS_BENCH_SET_SIZE").is_err() && std::env::var("PBS_BENCH_FULL").is_err()
        {
            assert_eq!(s.set_size, 1234);
            assert_eq!(s.trials, 7);
            assert_eq!(s.d_values, vec![1, 2, 3]);
        }
    }
}
