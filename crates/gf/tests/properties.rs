//! Property-based tests for GF(2^m) field and polynomial arithmetic.

use gf::{Field, Poly};
use proptest::prelude::*;

fn field_strategy() -> impl Strategy<Value = Field> {
    prop_oneof![
        Just(Field::new(3)),
        Just(Field::new(7)),
        Just(Field::new(8)),
        Just(Field::new(11)),
        Just(Field::new(13)),
        Just(Field::new(17)),
        Just(Field::new(24)),
        Just(Field::new(32)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn field_axioms(f in field_strategy(), a_raw in any::<u64>(), b_raw in any::<u64>(), c_raw in any::<u64>()) {
        let a = a_raw % f.order();
        let b = b_raw % f.order();
        let c = c_raw % f.order();
        // commutativity
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        // associativity
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        // distributivity
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        // identities
        prop_assert_eq!(f.mul(a, 1), a);
        prop_assert_eq!(f.add(a, 0), a);
        prop_assert_eq!(f.add(a, a), 0);
    }

    #[test]
    fn inverse_round_trip(f in field_strategy(), a_raw in any::<u64>()) {
        let a = a_raw % f.order();
        prop_assume!(a != 0);
        let inv = f.inv(a);
        prop_assert_eq!(f.mul(a, inv), 1);
        prop_assert_eq!(f.div(f.mul(a, 0x3) % f.order().max(1), a), f.mul(f.mul(a, 0x3) % f.order().max(1), inv));
    }

    #[test]
    fn frobenius_is_field_automorphism(f in field_strategy(), a_raw in any::<u64>(), b_raw in any::<u64>()) {
        let a = a_raw % f.order();
        let b = b_raw % f.order();
        prop_assert_eq!(f.square(f.mul(a, b)), f.mul(f.square(a), f.square(b)));
        prop_assert_eq!(f.square(f.add(a, b)), f.add(f.square(a), f.square(b)));
        prop_assert_eq!(f.sqrt(f.square(a)), a);
    }

    #[test]
    fn poly_mul_distributes_over_add(
        f in field_strategy(),
        a in prop::collection::vec(any::<u64>(), 0..8),
        b in prop::collection::vec(any::<u64>(), 0..8),
        c in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        let reduce = |v: Vec<u64>| Poly::from_coeffs(v.into_iter().map(|x| x % f.order()).collect());
        let (a, b, c) = (reduce(a), reduce(b), reduce(c));
        let lhs = a.mul(&b.add(&c, &f), &f);
        let rhs = a.mul(&b, &f).add(&a.mul(&c, &f), &f);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn poly_div_rem_reconstruction(
        f in field_strategy(),
        a in prop::collection::vec(any::<u64>(), 0..12),
        b in prop::collection::vec(any::<u64>(), 1..6),
    ) {
        let reduce = |v: Vec<u64>| Poly::from_coeffs(v.into_iter().map(|x| x % f.order()).collect());
        let a = reduce(a);
        let b = reduce(b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b, &f);
        prop_assert_eq!(q.mul(&b, &f).add(&r, &f), a);
        if !r.is_zero() {
            prop_assert!(r.degree().unwrap() < b.degree().unwrap());
        }
    }

    #[test]
    fn poly_eval_is_ring_homomorphism(
        f in field_strategy(),
        a in prop::collection::vec(any::<u64>(), 0..8),
        b in prop::collection::vec(any::<u64>(), 0..8),
        x_raw in any::<u64>(),
    ) {
        let reduce = |v: Vec<u64>| Poly::from_coeffs(v.into_iter().map(|y| y % f.order()).collect());
        let a = reduce(a);
        let b = reduce(b);
        let x = x_raw % f.order();
        prop_assert_eq!(a.add(&b, &f).eval(x, &f), f.add(a.eval(x, &f), b.eval(x, &f)));
        prop_assert_eq!(a.mul(&b, &f).eval(x, &f), f.mul(a.eval(x, &f), b.eval(x, &f)));
    }

    #[test]
    fn gcd_divides_both(
        f in field_strategy(),
        a in prop::collection::vec(any::<u64>(), 1..8),
        b in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let reduce = |v: Vec<u64>| Poly::from_coeffs(v.into_iter().map(|y| y % f.order()).collect());
        let a = reduce(a);
        let b = reduce(b);
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b, &f);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem(&g, &f).is_zero());
        prop_assert!(b.rem(&g, &f).is_zero());
    }
}
