//! Property-based tests for GF(2^m) field and polynomial arithmetic.

use gf::{Field, Poly};
use proptest::prelude::*;

fn field_strategy() -> impl Strategy<Value = Field> {
    prop_oneof![
        Just(Field::new(3)),
        Just(Field::new(7)),
        Just(Field::new(8)),
        Just(Field::new(11)),
        Just(Field::new(13)),
        Just(Field::new(17)),
        Just(Field::new(24)),
        Just(Field::new(32)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn field_axioms(f in field_strategy(), a_raw in any::<u64>(), b_raw in any::<u64>(), c_raw in any::<u64>()) {
        let a = a_raw % f.order();
        let b = b_raw % f.order();
        let c = c_raw % f.order();
        // commutativity
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        // associativity
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        // distributivity
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        // identities
        prop_assert_eq!(f.mul(a, 1), a);
        prop_assert_eq!(f.add(a, 0), a);
        prop_assert_eq!(f.add(a, a), 0);
    }

    #[test]
    fn inverse_round_trip(f in field_strategy(), a_raw in any::<u64>()) {
        let a = a_raw % f.order();
        prop_assume!(a != 0);
        let inv = f.inv(a);
        prop_assert_eq!(f.mul(a, inv), 1);
        prop_assert_eq!(f.div(f.mul(a, 0x3) % f.order().max(1), a), f.mul(f.mul(a, 0x3) % f.order().max(1), inv));
    }

    #[test]
    fn frobenius_is_field_automorphism(f in field_strategy(), a_raw in any::<u64>(), b_raw in any::<u64>()) {
        let a = a_raw % f.order();
        let b = b_raw % f.order();
        prop_assert_eq!(f.square(f.mul(a, b)), f.mul(f.square(a), f.square(b)));
        prop_assert_eq!(f.square(f.add(a, b)), f.add(f.square(a), f.square(b)));
        prop_assert_eq!(f.sqrt(f.square(a)), a);
    }

    #[test]
    fn poly_mul_distributes_over_add(
        f in field_strategy(),
        a in prop::collection::vec(any::<u64>(), 0..8),
        b in prop::collection::vec(any::<u64>(), 0..8),
        c in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        let reduce = |v: Vec<u64>| Poly::from_coeffs(v.into_iter().map(|x| x % f.order()).collect());
        let (a, b, c) = (reduce(a), reduce(b), reduce(c));
        let lhs = a.mul(&b.add(&c, &f), &f);
        let rhs = a.mul(&b, &f).add(&a.mul(&c, &f), &f);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn karatsuba_mul_matches_schoolbook(
        f in field_strategy(),
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        // Degrees straddle the Karatsuba cutoff from both sides, so the
        // dispatch, the recursion, and the unbalanced-split paths are all
        // exercised against the seed's schoolbook product.
        let reduce = |v: Vec<u64>| Poly::from_coeffs(v.into_iter().map(|x| x % f.order()).collect());
        let (a, b) = (reduce(a), reduce(b));
        prop_assert_eq!(a.mul(&b, &f), a.mul_schoolbook(&b, &f));
    }

    #[test]
    fn poly_div_rem_reconstruction(
        f in field_strategy(),
        a in prop::collection::vec(any::<u64>(), 0..12),
        b in prop::collection::vec(any::<u64>(), 1..6),
    ) {
        let reduce = |v: Vec<u64>| Poly::from_coeffs(v.into_iter().map(|x| x % f.order()).collect());
        let a = reduce(a);
        let b = reduce(b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b, &f);
        prop_assert_eq!(q.mul(&b, &f).add(&r, &f), a);
        if !r.is_zero() {
            prop_assert!(r.degree().unwrap() < b.degree().unwrap());
        }
    }

    #[test]
    fn poly_eval_is_ring_homomorphism(
        f in field_strategy(),
        a in prop::collection::vec(any::<u64>(), 0..8),
        b in prop::collection::vec(any::<u64>(), 0..8),
        x_raw in any::<u64>(),
    ) {
        let reduce = |v: Vec<u64>| Poly::from_coeffs(v.into_iter().map(|y| y % f.order()).collect());
        let a = reduce(a);
        let b = reduce(b);
        let x = x_raw % f.order();
        prop_assert_eq!(a.add(&b, &f).eval(x, &f), f.add(a.eval(x, &f), b.eval(x, &f)));
        prop_assert_eq!(a.mul(&b, &f).eval(x, &f), f.mul(a.eval(x, &f), b.eval(x, &f)));
    }

    #[test]
    fn gcd_divides_both(
        f in field_strategy(),
        a in prop::collection::vec(any::<u64>(), 1..8),
        b in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let reduce = |v: Vec<u64>| Poly::from_coeffs(v.into_iter().map(|y| y % f.order()).collect());
        let a = reduce(a);
        let b = reduce(b);
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b, &f);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem(&g, &f).is_zero());
        prop_assert!(b.rem(&g, &f).is_zero());
    }
}

/// Backend-equivalence properties: every fast path (Barrett mul, batched
/// mul/square, table mul, stepping Chien) must agree with the reference
/// implementation (per-call-detect carry-less multiply + shift-loop
/// reduction) for every supported degree, on both the table and the
/// carry-less/Barrett backends.
mod backend_equivalence {
    use gf::{BackendChoice, Field, Poly};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn barrett_mul_matches_reference_for_every_m(
            m in 3u32..=32,
            a_raw in any::<u64>(),
            b_raw in any::<u64>(),
        ) {
            let f = Field::with_backend(m, BackendChoice::Barrett);
            let a = a_raw % f.order();
            let b = b_raw % f.order();
            prop_assert_eq!(f.mul(a, b), f.mul_reference(a, b));
            prop_assert_eq!(f.square(a), f.mul_reference(a, a));
        }

        #[test]
        fn table_mul_matches_reference_for_every_tabled_m(
            m in 3u32..=16,
            a_raw in any::<u64>(),
            b_raw in any::<u64>(),
        ) {
            let f = Field::with_backend(m, BackendChoice::Tables);
            let a = a_raw % f.order();
            let b = b_raw % f.order();
            prop_assert_eq!(f.mul(a, b), f.mul_reference(a, b));
            prop_assert_eq!(f.square(a), f.mul_reference(a, a));
        }

        #[test]
        fn batched_ops_match_reference(
            m in 3u32..=32,
            xs_raw in prop::collection::vec(any::<u64>(), 0..24),
            ys_raw in prop::collection::vec(any::<u64>(), 0..24),
            c_raw in any::<u64>(),
        ) {
            let f = Field::new(m);
            let n = xs_raw.len().min(ys_raw.len());
            let xs: Vec<u64> = xs_raw[..n].iter().map(|x| x % f.order()).collect();
            let ys: Vec<u64> = ys_raw[..n].iter().map(|y| y % f.order()).collect();
            let c = c_raw % f.order();

            let mut prod = xs.clone();
            f.mul_slice(&mut prod, &ys);
            for i in 0..n {
                prop_assert_eq!(prod[i], f.mul_reference(xs[i], ys[i]));
            }

            let mut sq = xs.clone();
            f.square_slice(&mut sq);
            for i in 0..n {
                prop_assert_eq!(sq[i], f.mul_reference(xs[i], xs[i]));
            }

            let mut scaled = xs.clone();
            f.scalar_mul_slice(&mut scaled, c);
            for i in 0..n {
                prop_assert_eq!(scaled[i], f.mul_reference(xs[i], c));
            }
        }

        #[test]
        fn eval_batch_matches_naive_horner(
            m in 3u32..=32,
            coeffs_raw in prop::collection::vec(any::<u64>(), 0..10),
            xs_raw in prop::collection::vec(any::<u64>(), 0..13),
        ) {
            let f = Field::new(m);
            let p = Poly::from_coeffs(coeffs_raw.into_iter().map(|c| c % f.order()).collect());
            let xs: Vec<u64> = xs_raw.into_iter().map(|x| x % f.order()).collect();
            let batch = p.eval_batch(&xs, &f);
            let reference = Field::with_backend(m, BackendChoice::Reference);
            for (i, &x) in xs.iter().enumerate() {
                // Naive Horner through the reference backend.
                let mut acc = 0u64;
                for &c in p.coeffs().iter().rev() {
                    acc = reference.mul_reference(acc, x) ^ c;
                }
                prop_assert_eq!(batch[i], acc);
            }
        }

        #[test]
        fn stepping_chien_matches_naive_scan(
            m in 3u32..=11,
            roots_raw in prop::collection::hash_set(any::<u64>(), 0..6),
        ) {
            // Pin the tables backend: the stepping Chien walk needs the
            // antilog table, and PBS_FORCE_BACKEND may redirect Field::new.
            let f = Field::with_backend(m, BackendChoice::Tables);
            let roots: std::collections::HashSet<u64> =
                roots_raw.into_iter().map(|r| (r % (f.order() - 1)) + 1).collect();
            let mut p = Poly::one();
            for &r in &roots {
                p = p.mul(&Poly::from_coeffs(vec![r, 1]), &f);
            }
            let mut stepping = f
                .chien_search(p.coeffs(), p.degree_or_zero())
                .expect("small fields are table-backed");
            stepping.sort_unstable();
            let mut naive = p.roots_exhaustive(&f);
            naive.sort_unstable();
            prop_assert_eq!(stepping, naive);
        }
    }

    /// Deterministic exhaustive sweep across every degree and both forced
    /// backends, so a backend bug cannot hide behind proptest sampling.
    #[test]
    fn all_degrees_all_backends_sample_grid() {
        for m in 3u32..=32 {
            let barrett = Field::with_backend(m, BackendChoice::Barrett);
            let auto = Field::new(m);
            let samples: Vec<u64> = (0..64u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % barrett.order())
                .collect();
            for (k, &a) in samples.iter().enumerate() {
                let b = samples[(k * 7 + 3) % samples.len()];
                let expect = barrett.mul_reference(a, b);
                assert_eq!(barrett.mul(a, b), expect, "barrett m={m} {a:#x}*{b:#x}");
                assert_eq!(auto.mul(a, b), expect, "auto m={m} {a:#x}*{b:#x}");
                if a != 0 {
                    assert_eq!(auto.mul(a, auto.inv(a)), 1, "inv m={m} a={a:#x}");
                }
            }
        }
    }
}
