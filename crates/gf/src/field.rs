//! GF(2^m) field arithmetic.

/// Maximum supported extension degree.
pub const MAX_M: u32 = 32;
/// Minimum supported extension degree.
pub const MIN_M: u32 = 3;

/// Degrees up to this bound use log/antilog tables for multiplication and
/// inversion; larger degrees use carry-less shift-and-reduce multiplication.
const TABLE_M_LIMIT: u32 = 16;

/// Irreducible (in fact primitive) polynomials of degree `m` over GF(2),
/// indexed by `m - 3`. The `u64` encodes the full polynomial including the
/// leading `x^m` term (bit `m`).
///
/// Every entry is verified to be irreducible by a unit test using the Rabin
/// irreducibility test ([`is_irreducible`]); [`Field::new`] additionally
/// falls back to an exhaustive search should an entry ever be wrong, so the
/// field is always well defined.
const IRREDUCIBLE: [u64; (MAX_M - MIN_M + 1) as usize] = [
    0xB,          // m = 3:  x^3 + x + 1
    0x13,         // m = 4:  x^4 + x + 1
    0x25,         // m = 5:  x^5 + x^2 + 1
    0x43,         // m = 6:  x^6 + x + 1
    0x83,         // m = 7:  x^7 + x + 1
    0x11D,        // m = 8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,        // m = 9:  x^9 + x^4 + 1
    0x409,        // m = 10: x^10 + x^3 + 1
    0x805,        // m = 11: x^11 + x^2 + 1
    0x1053,       // m = 12: x^12 + x^6 + x^4 + x + 1
    0x201B,       // m = 13: x^13 + x^4 + x^3 + x + 1
    0x4443,       // m = 14: x^14 + x^10 + x^6 + x + 1
    0x8003,       // m = 15: x^15 + x + 1
    0x1100B,      // m = 16: x^16 + x^12 + x^3 + x + 1
    0x20009,      // m = 17: x^17 + x^3 + 1
    0x40081,      // m = 18: x^18 + x^7 + 1
    0x80027,      // m = 19: x^19 + x^5 + x^2 + x + 1
    0x100009,     // m = 20: x^20 + x^3 + 1
    0x200005,     // m = 21: x^21 + x^2 + 1
    0x400003,     // m = 22: x^22 + x + 1
    0x800021,     // m = 23: x^23 + x^5 + 1
    0x100001B,    // m = 24: x^24 + x^4 + x^3 + x + 1
    0x2000009,    // m = 25: x^25 + x^3 + 1
    0x4000047,    // m = 26: x^26 + x^6 + x^2 + x + 1
    0x8000027,    // m = 27: x^27 + x^5 + x^2 + x + 1
    0x10000009,   // m = 28: x^28 + x^3 + 1
    0x20000005,   // m = 29: x^29 + x^2 + 1
    0x40000053,   // m = 30: x^30 + x^6 + x^4 + x + 1
    0x80000009,   // m = 31: x^31 + x^3 + 1
    0x100400007,  // m = 32: x^32 + x^22 + x^2 + x + 1
];

/// Multiply two polynomials over GF(2) (carry-less multiplication).
///
/// `a` and `b` must have degree < 64 combined so the product fits in 128 bits.
/// Uses the PCLMULQDQ instruction when the CPU supports it (the hot path for
/// the large fields PinSketch needs), falling back to portable shift-and-add.
fn clmul(a: u64, b: u64) -> u128 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("pclmulqdq") {
            // SAFETY: feature presence checked at runtime just above.
            return unsafe { clmul_pclmul(a, b) };
        }
    }
    clmul_portable(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "pclmulqdq")]
unsafe fn clmul_pclmul(a: u64, b: u64) -> u128 {
    use std::arch::x86_64::{_mm_clmulepi64_si128, _mm_extract_epi64, _mm_set_epi64x};
    let va = _mm_set_epi64x(0, a as i64);
    let vb = _mm_set_epi64x(0, b as i64);
    let prod = _mm_clmulepi64_si128::<0>(va, vb);
    let lo = _mm_extract_epi64::<0>(prod) as u64;
    let hi = _mm_extract_epi64::<1>(prod) as u64;
    ((hi as u128) << 64) | lo as u128
}

fn clmul_portable(a: u64, b: u64) -> u128 {
    let mut acc: u128 = 0;
    let mut a = a as u128;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a <<= 1;
        b >>= 1;
    }
    acc
}

/// Reduce a GF(2)-polynomial `v` modulo `poly` (degree `m`, with its leading
/// bit set). The result has degree < m.
fn reduce(mut v: u128, poly: u64, m: u32) -> u64 {
    if v == 0 {
        return 0;
    }
    let poly = poly as u128;
    // Highest possible degree of v is 2m - 2 < 64 for m <= 32.
    loop {
        let deg = 127 - v.leading_zeros();
        if deg < m {
            break;
        }
        v ^= poly << (deg - m);
        if v == 0 {
            break;
        }
    }
    v as u64
}

/// Degree of a nonzero GF(2)-polynomial encoded as a bitmask.
fn deg2(p: u64) -> u32 {
    debug_assert!(p != 0);
    63 - p.leading_zeros()
}

/// Remainder of GF(2)-polynomial division `a mod b` (`b != 0`).
fn rem2(mut a: u64, b: u64) -> u64 {
    let db = deg2(b);
    while a != 0 && deg2(a) >= db {
        a ^= b << (deg2(a) - db);
    }
    a
}

/// Greatest common divisor of two GF(2)-polynomials.
fn gcd2(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = rem2(a, b);
        a = b;
        b = r;
    }
    a
}

/// Compute `x^(2^k) mod poly` for a GF(2)-polynomial modulus, starting from `x`.
fn frobenius_iter(poly: u64, m: u32, k: u32) -> u64 {
    let mut cur: u64 = 0b10; // x
    for _ in 0..k {
        // Square cur modulo poly. Squaring a GF(2) polynomial spreads bits out.
        let sq = square_bits(cur);
        cur = reduce(sq, poly, m);
    }
    cur
}

/// Square of a GF(2) polynomial: interleave zero bits.
fn square_bits(a: u64) -> u128 {
    let mut out: u128 = 0;
    let mut i = 0;
    let mut v = a;
    while v != 0 {
        if v & 1 == 1 {
            out |= 1u128 << (2 * i);
        }
        v >>= 1;
        i += 1;
    }
    out
}

/// Rabin irreducibility test for a GF(2)-polynomial of degree `m`.
///
/// `poly` must include the leading `x^m` term. Returns `true` iff `poly` is
/// irreducible over GF(2).
pub fn is_irreducible(poly: u64, m: u32) -> bool {
    if m == 0 || poly >> m != 1 {
        return false;
    }
    if m == 1 {
        return true;
    }
    // Condition 1: x^(2^m) == x (mod poly).
    let xqm = frobenius_iter(poly, m, m);
    if xqm != 0b10 {
        return false;
    }
    // Condition 2: for every prime divisor q of m, gcd(x^(2^(m/q)) - x, poly) == 1.
    let mut rest = m;
    let mut q = 2;
    let mut primes = Vec::new();
    while q * q <= rest {
        if rest % q == 0 {
            primes.push(q);
            while rest % q == 0 {
                rest /= q;
            }
        }
        q += 1;
    }
    if rest > 1 {
        primes.push(rest);
    }
    for q in primes {
        let e = m / q;
        let xq = frobenius_iter(poly, m, e);
        let diff = xq ^ 0b10; // x^(2^e) - x
        if diff == 0 || gcd2(poly, diff) != 1 {
            return false;
        }
    }
    true
}

/// Return an irreducible polynomial of degree `m` (including the leading term).
///
/// Uses the built-in table, falling back to an exhaustive search (smallest
/// irreducible polynomial) if the table entry fails verification. The search
/// fallback exists purely as a safety net; the table is unit-tested.
pub fn irreducible_poly(m: u32) -> u64 {
    assert!(
        (MIN_M..=MAX_M).contains(&m),
        "field degree m must be in {MIN_M}..={MAX_M}, got {m}"
    );
    let cand = IRREDUCIBLE[(m - MIN_M) as usize];
    if is_irreducible(cand, m) {
        return cand;
    }
    // Safety net: smallest irreducible polynomial of degree m.
    let base = 1u64 << m;
    for low in 1..(1u64 << m) {
        let p = base | low;
        if is_irreducible(p, m) {
            return p;
        }
    }
    unreachable!("an irreducible polynomial of degree {m} always exists")
}

/// A binary extension field GF(2^m), `3 <= m <= 32`.
///
/// Elements are `u64` values whose low `m` bits hold the polynomial-basis
/// coefficients. All operations panic (in debug builds) if an operand has
/// bits above `m` set.
#[derive(Clone)]
pub struct Field {
    m: u32,
    poly: u64,
    order: u64,
    /// antilog table: exp[i] = g^i for a generator g (only for small m)
    exp: Vec<u32>,
    /// log table: log[exp[i]] = i (only for small m; log[0] unused)
    log: Vec<u32>,
}

impl std::fmt::Debug for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Field")
            .field("m", &self.m)
            .field("poly", &format_args!("{:#x}", self.poly))
            .field("tables", &!self.exp.is_empty())
            .finish()
    }
}

impl Field {
    /// Construct GF(2^m) using the crate's default irreducible polynomial.
    pub fn new(m: u32) -> Self {
        Self::with_poly(m, irreducible_poly(m))
    }

    /// Construct GF(2^m) with an explicit irreducible polynomial
    /// (including its leading `x^m` term).
    ///
    /// # Panics
    /// Panics if `m` is out of range or `poly` is not irreducible of degree `m`.
    pub fn with_poly(m: u32, poly: u64) -> Self {
        assert!(
            (MIN_M..=MAX_M).contains(&m),
            "field degree m must be in {MIN_M}..={MAX_M}, got {m}"
        );
        assert!(
            is_irreducible(poly, m),
            "modulus {poly:#x} is not an irreducible polynomial of degree {m}"
        );
        let order = 1u64 << m;
        let mut field = Field {
            m,
            poly,
            order,
            exp: Vec::new(),
            log: Vec::new(),
        };
        if m <= TABLE_M_LIMIT {
            field.build_tables();
        }
        field
    }

    /// Build log/antilog tables. The primitive element used is the smallest
    /// element (>= 2, i.e. `x` or a small polynomial) that generates the
    /// multiplicative group.
    fn build_tables(&mut self) {
        let size = self.order as usize;
        let group = self.order - 1;
        // Find a generator by trial: try x, then x+1, ... Most table entries
        // are primitive polynomials so x itself generates.
        let mut gen = 2u64;
        loop {
            if self.multiplicative_order_slow(gen) == group {
                break;
            }
            gen += 1;
            debug_assert!(gen < self.order, "no generator found (impossible)");
        }
        let mut exp = vec![0u32; 2 * size];
        let mut log = vec![0u32; size];
        let mut cur = 1u64;
        for (i, e) in exp.iter_mut().take(group as usize).enumerate() {
            *e = cur as u32;
            log[cur as usize] = i as u32;
            cur = self.mul_slow(cur, gen);
        }
        // Duplicate the cycle so exp[(la + lb)] never needs a modulo.
        for i in group as usize..2 * size {
            exp[i] = exp[i - group as usize];
        }
        self.exp = exp;
        self.log = log;
    }

    fn multiplicative_order_slow(&self, a: u64) -> u64 {
        if a == 0 {
            return 0;
        }
        let mut cur = a;
        let mut ord = 1;
        while cur != 1 {
            cur = self.mul_slow(cur, a);
            ord += 1;
        }
        ord
    }

    /// The extension degree `m`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The field modulus, including the leading `x^m` term.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.poly
    }

    /// Number of field elements, `2^m`.
    #[inline]
    pub fn order(&self) -> u64 {
        self.order
    }

    /// Number of nonzero field elements, `2^m - 1`.
    #[inline]
    pub fn nonzero_count(&self) -> u64 {
        self.order - 1
    }

    /// `true` if `a` is a valid element (fits in `m` bits).
    #[inline]
    pub fn contains(&self, a: u64) -> bool {
        a < self.order
    }

    #[inline]
    fn check(&self, a: u64) {
        debug_assert!(self.contains(a), "element {a:#x} out of field GF(2^{})", self.m);
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        self.check(a);
        self.check(b);
        a ^ b
    }

    /// Field subtraction; identical to addition in characteristic 2.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        self.add(a, b)
    }

    fn mul_slow(&self, a: u64, b: u64) -> u64 {
        reduce(clmul(a, b), self.poly, self.m)
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.check(a);
        self.check(b);
        if a == 0 || b == 0 {
            return 0;
        }
        if !self.exp.is_empty() {
            let la = self.log[a as usize] as usize;
            let lb = self.log[b as usize] as usize;
            self.exp[la + lb] as u64
        } else {
            self.mul_slow(a, b)
        }
    }

    /// Field squaring.
    #[inline]
    pub fn square(&self, a: u64) -> u64 {
        self.check(a);
        if a == 0 {
            return 0;
        }
        if !self.exp.is_empty() {
            let la = self.log[a as usize] as usize;
            self.exp[la + la] as u64
        } else {
            reduce(square_bits(a), self.poly, self.m)
        }
    }

    /// Exponentiation `a^e` (with `0^0 == 1`).
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        self.check(a);
        if e == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let mut base = a;
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.square(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u64) -> u64 {
        self.check(a);
        assert!(a != 0, "zero has no multiplicative inverse");
        if !self.exp.is_empty() {
            let la = self.log[a as usize] as u64;
            let group = self.order - 1;
            self.exp[((group - la) % group) as usize] as u64
        } else {
            // a^(2^m - 2)
            self.pow(a, self.order - 2)
        }
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u64, b: u64) -> u64 {
        self.mul(a, self.inv(b))
    }

    /// The trace map `Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1))`, which takes
    /// values in GF(2) (returned as 0 or 1). Used by the Berlekamp trace
    /// root-finding algorithm in the `bch` crate.
    pub fn trace(&self, a: u64) -> u64 {
        self.check(a);
        let mut acc = a;
        let mut cur = a;
        for _ in 1..self.m {
            cur = self.square(cur);
            acc ^= cur;
        }
        debug_assert!(acc == 0 || acc == 1, "trace must land in GF(2)");
        acc
    }

    /// Square root of `a`: in GF(2^m) the Frobenius map is a bijection, so
    /// every element has a unique square root `a^(2^(m-1))`.
    pub fn sqrt(&self, a: u64) -> u64 {
        self.check(a);
        let mut cur = a;
        for _ in 0..(self.m - 1) {
            cur = self.square(cur);
        }
        cur
    }

    /// Iterator over all nonzero field elements (1 ..= 2^m - 1).
    pub fn nonzero_elements(&self) -> impl Iterator<Item = u64> {
        1..self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_entries_are_irreducible() {
        for m in MIN_M..=MAX_M {
            let p = IRREDUCIBLE[(m - MIN_M) as usize];
            assert!(
                is_irreducible(p, m),
                "table polynomial {p:#x} for m={m} is not irreducible"
            );
        }
    }

    #[test]
    fn reducible_polynomials_are_rejected() {
        // x^4 + 1 = (x+1)^4 is reducible.
        assert!(!is_irreducible(0b10001, 4));
        // x^2 factors trivially.
        assert!(!is_irreducible(0b100, 2));
        // x^2 + x + 1 is the unique irreducible quadratic.
        assert!(is_irreducible(0b111, 2));
        // wrong degree encoding
        assert!(!is_irreducible(0b111, 3));
    }

    #[test]
    fn small_field_mul_matches_slow_path() {
        let f = Field::new(8);
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(f.mul(a, b), f.mul_slow(a, b), "mismatch at {a} * {b}");
            }
        }
    }

    #[test]
    fn gf16_inverse_and_identity() {
        let f = Field::new(4);
        for a in 1..16u64 {
            let inv = f.inv(a);
            assert_eq!(f.mul(a, inv), 1, "a * a^-1 != 1 for a={a}");
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.mul(a, 0), 0);
        }
    }

    #[test]
    fn large_field_inverse() {
        let f = Field::new(32);
        for a in [1u64, 2, 3, 0xDEADBEEF, 0xFFFF_FFFE, 0x8000_0001] {
            let inv = f.inv(a);
            assert_eq!(f.mul(a, inv), 1, "a * a^-1 != 1 for a={a:#x}");
        }
    }

    #[test]
    fn distributivity_small_field() {
        let f = Field::new(6);
        for a in 0..64u64 {
            for b in 0..64u64 {
                let c = (a * 31 + b * 17 + 5) % 64;
                assert_eq!(
                    f.mul(a, f.add(b, c)),
                    f.add(f.mul(a, b), f.mul(a, c)),
                    "distributivity failed at a={a}, b={b}, c={c}"
                );
            }
        }
    }

    #[test]
    fn square_equals_self_mul() {
        for m in [3u32, 8, 11, 13, 17, 24, 32] {
            let f = Field::new(m);
            let samples: Vec<u64> = (0..200).map(|i| (i * 2654435761u64 + 12345) % f.order()).collect();
            for a in samples {
                assert_eq!(f.square(a), f.mul(a, a), "square mismatch for a={a:#x}, m={m}");
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let f = Field::new(10);
        let a = 0x2AB;
        let mut acc = 1u64;
        for e in 0..50u64 {
            assert_eq!(f.pow(a, e), acc, "pow mismatch at exponent {e}");
            acc = f.mul(acc, a);
        }
    }

    #[test]
    fn frobenius_is_additive_and_trace_in_gf2() {
        let f = Field::new(12);
        for i in 0..500u64 {
            let a = (i * 48271 + 7) % f.order();
            let b = (i * 69621 + 3) % f.order();
            assert_eq!(f.square(f.add(a, b)), f.add(f.square(a), f.square(b)));
            let t = f.trace(a);
            assert!(t == 0 || t == 1);
        }
    }

    #[test]
    fn sqrt_inverts_square() {
        for m in [5u32, 11, 20, 32] {
            let f = Field::new(m);
            for i in 0..100u64 {
                let a = i.wrapping_mul(6364136223846793005).wrapping_add(1) % f.order();
                assert_eq!(f.sqrt(f.square(a)), a, "sqrt(square(a)) != a for m={m}");
            }
        }
    }

    #[test]
    fn order_and_bounds() {
        let f = Field::new(11);
        assert_eq!(f.order(), 2048);
        assert_eq!(f.nonzero_count(), 2047);
        assert_eq!(f.m(), 11);
        assert!(f.contains(2047));
        assert!(!f.contains(2048));
    }

    #[test]
    #[should_panic(expected = "zero has no multiplicative inverse")]
    fn inverse_of_zero_panics() {
        Field::new(8).inv(0);
    }

    #[test]
    #[should_panic(expected = "field degree m must be in")]
    fn out_of_range_degree_panics() {
        Field::new(2);
    }
}
