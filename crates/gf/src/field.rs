//! GF(2^m) field arithmetic.
//!
//! # Backend selection
//!
//! Every [`Field`] resolves its multiplication strategy **once, at
//! construction** — the hot path never re-detects CPU features or re-derives
//! constants:
//!
//! * **Log/antilog tables** (`m <= 16`): multiplication is two table reads
//!   and one add; inversion is one subtraction in the exponent domain. The
//!   tables also expose the generator powers the stepping Chien search in
//!   the `bch` crate walks.
//! * **Carry-less multiply + Barrett reduction** (`m > 16`): the 128-bit
//!   polynomial product comes from PCLMULQDQ when the CPU supports it
//!   (detected once and cached as a function pointer) or a portable
//!   shift-and-add loop otherwise. The product is reduced modulo the field
//!   polynomial with **Barrett reduction**: a per-field precomputed constant
//!   `mu = floor(x^(2m) / p)` turns reduction into two further carry-less
//!   multiplications and two shifts, replacing the seed's bit-at-a-time
//!   reduction loop (up to `2m - 2` iterations) with straight-line code.
//! * **Reference** ([`BackendChoice::Reference`]): the original
//!   per-call-feature-detect + shift-loop-reduce path, kept as the ground
//!   truth for property tests and as the baseline the `BENCH_gf_bch.json`
//!   speedups are measured against.
//!
//! Batched entry points ([`Field::mul_slice`], [`Field::square_slice`],
//! [`Field::scalar_mul_slice`]) hoist the backend dispatch out of the loop so
//! callers such as the BCH syndrome accumulator amortize it across a whole
//! slice.
//!
//! The `PBS_FORCE_BACKEND` environment variable (`tables` / `barrett` /
//! `reference`) overrides the automatic choice for every [`Field::new`]
//! construction in the process — the CI matrix uses it to run the full test
//! suite against the reference path. Explicit [`Field::with_backend`]
//! requests are never overridden.

/// Maximum supported extension degree.
pub const MAX_M: u32 = 32;
/// Minimum supported extension degree.
pub const MIN_M: u32 = 3;

/// Degrees up to this bound use log/antilog tables for multiplication and
/// inversion; larger degrees use carry-less multiplication with Barrett
/// reduction.
const TABLE_M_LIMIT: u32 = 16;

/// Irreducible (in fact primitive) polynomials of degree `m` over GF(2),
/// indexed by `m - 3`. The `u64` encodes the full polynomial including the
/// leading `x^m` term (bit `m`).
///
/// Every entry is verified to be irreducible by a unit test using the Rabin
/// irreducibility test ([`is_irreducible`]); [`Field::new`] additionally
/// falls back to an exhaustive search should an entry ever be wrong, so the
/// field is always well defined.
const IRREDUCIBLE: [u64; (MAX_M - MIN_M + 1) as usize] = [
    0xB,         // m = 3:  x^3 + x + 1
    0x13,        // m = 4:  x^4 + x + 1
    0x25,        // m = 5:  x^5 + x^2 + 1
    0x43,        // m = 6:  x^6 + x + 1
    0x83,        // m = 7:  x^7 + x + 1
    0x11D,       // m = 8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,       // m = 9:  x^9 + x^4 + 1
    0x409,       // m = 10: x^10 + x^3 + 1
    0x805,       // m = 11: x^11 + x^2 + 1
    0x1053,      // m = 12: x^12 + x^6 + x^4 + x + 1
    0x201B,      // m = 13: x^13 + x^4 + x^3 + x + 1
    0x4443,      // m = 14: x^14 + x^10 + x^6 + x + 1
    0x8003,      // m = 15: x^15 + x + 1
    0x1100B,     // m = 16: x^16 + x^12 + x^3 + x + 1
    0x20009,     // m = 17: x^17 + x^3 + 1
    0x40081,     // m = 18: x^18 + x^7 + 1
    0x80027,     // m = 19: x^19 + x^5 + x^2 + x + 1
    0x100009,    // m = 20: x^20 + x^3 + 1
    0x200005,    // m = 21: x^21 + x^2 + 1
    0x400003,    // m = 22: x^22 + x + 1
    0x800021,    // m = 23: x^23 + x^5 + 1
    0x100001B,   // m = 24: x^24 + x^4 + x^3 + x + 1
    0x2000009,   // m = 25: x^25 + x^3 + 1
    0x4000047,   // m = 26: x^26 + x^6 + x^2 + x + 1
    0x8000027,   // m = 27: x^27 + x^5 + x^2 + x + 1
    0x10000009,  // m = 28: x^28 + x^3 + 1
    0x20000005,  // m = 29: x^29 + x^2 + 1
    0x40000053,  // m = 30: x^30 + x^6 + x^4 + x + 1
    0x80000009,  // m = 31: x^31 + x^3 + 1
    0x100400007, // m = 32: x^32 + x^22 + x^2 + x + 1
];

/// Resolved carry-less 64x64 -> 128 multiplication routine.
type ClmulFn = fn(u64, u64) -> u128;

/// Detect the best carry-less multiply once; the result is installed in the
/// [`Field`] as a function pointer so the hot path pays no detection cost.
fn detect_clmul() -> (ClmulFn, bool) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("pclmulqdq") {
            return (clmul_pclmul_dispatched, true);
        }
    }
    (clmul_portable, false)
}

/// Safe front for the PCLMULQDQ path. Only ever installed as a [`Field`]'s
/// `clmul` pointer after [`detect_clmul`] confirmed hardware support, so the
/// feature precondition always holds when it is called.
#[cfg(target_arch = "x86_64")]
fn clmul_pclmul_dispatched(a: u64, b: u64) -> u128 {
    // SAFETY: installed only after runtime detection of `pclmulqdq`.
    unsafe { clmul_pclmul(a, b) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "pclmulqdq")]
unsafe fn clmul_pclmul(a: u64, b: u64) -> u128 {
    use std::arch::x86_64::{_mm_clmulepi64_si128, _mm_extract_epi64, _mm_set_epi64x};
    let va = _mm_set_epi64x(0, a as i64);
    let vb = _mm_set_epi64x(0, b as i64);
    let prod = _mm_clmulepi64_si128::<0>(va, vb);
    let lo = _mm_extract_epi64::<0>(prod) as u64;
    let hi = _mm_extract_epi64::<1>(prod) as u64;
    ((hi as u128) << 64) | lo as u128
}

/// Portable carry-less multiplication (shift-and-add).
fn clmul_portable(a: u64, b: u64) -> u128 {
    let mut acc: u128 = 0;
    let mut a = a as u128;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a <<= 1;
        b >>= 1;
    }
    acc
}

/// Carry-less multiplication with **per-call** feature detection: the seed's
/// original code path, kept as the reference implementation the fast paths
/// are benchmarked and property-tested against.
fn clmul_detect_per_call(a: u64, b: u64) -> u128 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("pclmulqdq") {
            // SAFETY: feature presence checked at runtime just above.
            return unsafe { clmul_pclmul(a, b) };
        }
    }
    clmul_portable(a, b)
}

/// Reduce a GF(2)-polynomial `v` modulo `poly` (degree `m`, with its leading
/// bit set) one degree at a time. The result has degree < m. This is the
/// reference reduction; the fast path uses [`Field::barrett_reduce`].
fn reduce_naive(mut v: u128, poly: u64, m: u32) -> u64 {
    if v == 0 {
        return 0;
    }
    let poly = poly as u128;
    // Highest possible degree of v is 2m - 2 < 64 for m <= 32.
    loop {
        let deg = 127 - v.leading_zeros();
        if deg < m {
            break;
        }
        v ^= poly << (deg - m);
        if v == 0 {
            break;
        }
    }
    v as u64
}

/// Barrett constant `mu = floor(x^(2m) / poly)`: GF(2)-polynomial long
/// division of `x^(2m)` by `poly`. `mu` has degree exactly `m`, so it fits a
/// `u64` for every supported field.
fn barrett_mu(poly: u64, m: u32) -> u64 {
    let mut rem: u128 = 1u128 << (2 * m);
    let mut quot: u64 = 0;
    let p = poly as u128;
    while rem != 0 {
        let deg = 127 - rem.leading_zeros();
        if deg < m {
            break;
        }
        let shift = deg - m;
        quot |= 1u64 << shift;
        rem ^= p << shift;
    }
    quot
}

/// Degree of a nonzero GF(2)-polynomial encoded as a bitmask.
fn deg2(p: u64) -> u32 {
    debug_assert!(p != 0);
    63 - p.leading_zeros()
}

/// Remainder of GF(2)-polynomial division `a mod b` (`b != 0`).
fn rem2(mut a: u64, b: u64) -> u64 {
    let db = deg2(b);
    while a != 0 && deg2(a) >= db {
        a ^= b << (deg2(a) - db);
    }
    a
}

/// Greatest common divisor of two GF(2)-polynomials.
fn gcd2(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = rem2(a, b);
        a = b;
        b = r;
    }
    a
}

/// Compute `x^(2^k) mod poly` for a GF(2)-polynomial modulus, starting from `x`.
fn frobenius_iter(poly: u64, m: u32, k: u32) -> u64 {
    let mut cur: u64 = 0b10; // x
    for _ in 0..k {
        // Square cur modulo poly. Squaring a GF(2) polynomial spreads bits out.
        let sq = square_bits(cur);
        cur = reduce_naive(sq, poly, m);
    }
    cur
}

/// Square of a GF(2) polynomial: interleave zero bits.
fn square_bits(a: u64) -> u128 {
    let mut out: u128 = 0;
    let mut i = 0;
    let mut v = a;
    while v != 0 {
        if v & 1 == 1 {
            out |= 1u128 << (2 * i);
        }
        v >>= 1;
        i += 1;
    }
    out
}

/// Rabin irreducibility test for a GF(2)-polynomial of degree `m`.
///
/// `poly` must include the leading `x^m` term. Returns `true` iff `poly` is
/// irreducible over GF(2).
pub fn is_irreducible(poly: u64, m: u32) -> bool {
    if m == 0 || poly >> m != 1 {
        return false;
    }
    if m == 1 {
        return true;
    }
    // Condition 1: x^(2^m) == x (mod poly).
    let xqm = frobenius_iter(poly, m, m);
    if xqm != 0b10 {
        return false;
    }
    // Condition 2: for every prime divisor q of m, gcd(x^(2^(m/q)) - x, poly) == 1.
    let mut rest = m;
    let mut q = 2;
    let mut primes = Vec::new();
    while q * q <= rest {
        if rest.is_multiple_of(q) {
            primes.push(q);
            while rest.is_multiple_of(q) {
                rest /= q;
            }
        }
        q += 1;
    }
    if rest > 1 {
        primes.push(rest);
    }
    for q in primes {
        let e = m / q;
        let xq = frobenius_iter(poly, m, e);
        let diff = xq ^ 0b10; // x^(2^e) - x
        if diff == 0 || gcd2(poly, diff) != 1 {
            return false;
        }
    }
    true
}

/// Return an irreducible polynomial of degree `m` (including the leading term).
///
/// Uses the built-in table, falling back to an exhaustive search (smallest
/// irreducible polynomial) if the table entry fails verification. The search
/// fallback exists purely as a safety net; the table is unit-tested.
pub fn irreducible_poly(m: u32) -> u64 {
    assert!(
        (MIN_M..=MAX_M).contains(&m),
        "field degree m must be in {MIN_M}..={MAX_M}, got {m}"
    );
    let cand = IRREDUCIBLE[(m - MIN_M) as usize];
    if is_irreducible(cand, m) {
        return cand;
    }
    // Safety net: smallest irreducible polynomial of degree m.
    let base = 1u64 << m;
    for low in 1..(1u64 << m) {
        let p = base | low;
        if is_irreducible(p, m) {
            return p;
        }
    }
    unreachable!("an irreducible polynomial of degree {m} always exists")
}

/// Requested multiplication backend for [`Field::with_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Tables for `m <= 16`, carry-less + Barrett otherwise (the default).
    Auto,
    /// Force log/antilog tables (panics for `m > 16`).
    Tables,
    /// Force carry-less multiplication + Barrett reduction, even for small
    /// fields where tables would normally win.
    Barrett,
    /// The original per-call-detect + shift-loop-reduce path. Slow; exists
    /// so benchmarks and property tests can compare against it end to end.
    Reference,
}

/// Resolved backend a [`Field`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Tables,
    Barrett,
    Reference,
}

/// Backend override requested through the `PBS_FORCE_BACKEND` environment
/// variable (`tables`, `barrett`, `reference`, or `auto`/unset for none),
/// read once per process. Only [`BackendChoice::Auto`] constructions honour
/// it — explicit `with_backend` requests (property tests, benchmarks) are
/// never overridden — so the CI backend matrix can run the whole test suite
/// on the reference path without touching any call site.
fn forced_backend() -> Option<BackendChoice> {
    static FORCED: std::sync::OnceLock<Option<BackendChoice>> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("PBS_FORCE_BACKEND") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "tables" => Some(BackendChoice::Tables),
            "barrett" => Some(BackendChoice::Barrett),
            "reference" => Some(BackendChoice::Reference),
            _ => None,
        },
        Err(_) => None,
    })
}

/// A binary extension field GF(2^m), `3 <= m <= 32`.
///
/// Elements are `u64` values whose low `m` bits hold the polynomial-basis
/// coefficients. All operations panic (in debug builds) if an operand has
/// bits above `m` set. See the module docs for how the multiplication
/// backend is chosen.
#[derive(Clone)]
pub struct Field {
    m: u32,
    poly: u64,
    order: u64,
    backend: Backend,
    /// Carry-less multiply resolved once at construction (PCLMUL or portable).
    clmul: ClmulFn,
    /// `true` when `clmul` is the hardware PCLMULQDQ path.
    hw_clmul: bool,
    /// Barrett constant `floor(x^(2m) / poly)`.
    mu: u64,
    /// antilog table: exp[i] = g^i for the generator g (only for small m);
    /// the cycle is stored twice so exp[la + lb] never needs a modulo.
    exp: Vec<u32>,
    /// log table: log[exp[i]] = i (only for small m; log[0] unused)
    log: Vec<u32>,
    /// The generator the tables are built on (0 when no tables).
    generator: u64,
}

impl std::fmt::Debug for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Field")
            .field("m", &self.m)
            .field("poly", &format_args!("{:#x}", self.poly))
            .field("backend", &self.backend_name())
            .finish()
    }
}

impl Field {
    /// Construct GF(2^m) using the crate's default irreducible polynomial.
    pub fn new(m: u32) -> Self {
        Self::with_poly(m, irreducible_poly(m))
    }

    /// Construct GF(2^m) with an explicit irreducible polynomial
    /// (including its leading `x^m` term).
    ///
    /// # Panics
    /// Panics if `m` is out of range or `poly` is not irreducible of degree `m`.
    pub fn with_poly(m: u32, poly: u64) -> Self {
        Self::build(m, poly, BackendChoice::Auto)
    }

    /// Construct GF(2^m) with an explicitly chosen backend, mainly for
    /// benchmarks and backend-equivalence property tests.
    ///
    /// # Panics
    /// Panics if `m` is out of range, or `BackendChoice::Tables` is requested
    /// for a field too large to table (`m > 16`).
    pub fn with_backend(m: u32, choice: BackendChoice) -> Self {
        Self::build(m, irreducible_poly(m), choice)
    }

    fn build(m: u32, poly: u64, choice: BackendChoice) -> Self {
        assert!(
            (MIN_M..=MAX_M).contains(&m),
            "field degree m must be in {MIN_M}..={MAX_M}, got {m}"
        );
        assert!(
            is_irreducible(poly, m),
            "modulus {poly:#x} is not an irreducible polynomial of degree {m}"
        );
        let choice = match choice {
            // `tables` forced onto a large field falls back to the auto rule
            // instead of panicking, so one env setting fits every m.
            BackendChoice::Auto => match forced_backend() {
                Some(BackendChoice::Tables) if m > TABLE_M_LIMIT => BackendChoice::Auto,
                Some(forced) => forced,
                None => BackendChoice::Auto,
            },
            explicit => explicit,
        };
        let backend = match choice {
            BackendChoice::Auto => {
                if m <= TABLE_M_LIMIT {
                    Backend::Tables
                } else {
                    Backend::Barrett
                }
            }
            BackendChoice::Tables => {
                assert!(
                    m <= TABLE_M_LIMIT,
                    "log/antilog tables are limited to m <= {TABLE_M_LIMIT}, got {m}"
                );
                Backend::Tables
            }
            BackendChoice::Barrett => Backend::Barrett,
            BackendChoice::Reference => Backend::Reference,
        };
        let (clmul, hw_clmul) = detect_clmul();
        let mut field = Field {
            m,
            poly,
            order: 1u64 << m,
            backend,
            clmul,
            hw_clmul,
            mu: barrett_mu(poly, m),
            exp: Vec::new(),
            log: Vec::new(),
            generator: 0,
        };
        if backend == Backend::Tables {
            field.build_tables();
        }
        field
    }

    /// Build log/antilog tables. The primitive element used is the smallest
    /// element (>= 2, i.e. `x` or a small polynomial) that generates the
    /// multiplicative group.
    fn build_tables(&mut self) {
        let size = self.order as usize;
        let group = self.order - 1;
        // Find a generator by trial: try x, then x+1, ... Most table entries
        // are primitive polynomials so x itself generates.
        let mut generator = 2u64;
        loop {
            if self.multiplicative_order_slow(generator) == group {
                break;
            }
            generator += 1;
            debug_assert!(generator < self.order, "no generator found (impossible)");
        }
        let mut exp = vec![0u32; 2 * size];
        let mut log = vec![0u32; size];
        let mut cur = 1u64;
        for (i, e) in exp.iter_mut().take(group as usize).enumerate() {
            *e = cur as u32;
            log[cur as usize] = i as u32;
            cur = self.mul_reference(cur, generator);
        }
        // Duplicate the cycle so exp[(la + lb)] never needs a modulo.
        for i in group as usize..2 * size {
            exp[i] = exp[i - group as usize];
        }
        self.exp = exp;
        self.log = log;
        self.generator = generator;
    }

    fn multiplicative_order_slow(&self, a: u64) -> u64 {
        if a == 0 {
            return 0;
        }
        let mut cur = a;
        let mut ord = 1;
        while cur != 1 {
            cur = self.mul_reference(cur, a);
            ord += 1;
        }
        ord
    }

    /// The extension degree `m`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The field modulus, including the leading `x^m` term.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.poly
    }

    /// Number of field elements, `2^m`.
    #[inline]
    pub fn order(&self) -> u64 {
        self.order
    }

    /// Number of nonzero field elements, `2^m - 1`.
    #[inline]
    pub fn nonzero_count(&self) -> u64 {
        self.order - 1
    }

    /// Name of the resolved multiplication backend, for diagnostics and the
    /// benchmark reports: `"tables"`, `"clmul-barrett"`, `"portable-barrett"`
    /// or `"reference"`.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            Backend::Tables => "tables",
            Backend::Barrett => {
                if self.hw_clmul {
                    "clmul-barrett"
                } else {
                    "portable-barrett"
                }
            }
            Backend::Reference => "reference",
        }
    }

    /// `true` when hardware carry-less multiplication (PCLMULQDQ) was
    /// detected at construction.
    pub fn has_hw_clmul(&self) -> bool {
        self.hw_clmul
    }

    /// The generator whose powers the log/antilog tables enumerate, if this
    /// field is table-backed. The stepping Chien search walks these powers.
    pub fn generator(&self) -> Option<u64> {
        if self.generator == 0 {
            None
        } else {
            Some(self.generator)
        }
    }

    /// `true` if `a` is a valid element (fits in `m` bits).
    #[inline]
    pub fn contains(&self, a: u64) -> bool {
        a < self.order
    }

    #[inline]
    fn check(&self, a: u64) {
        debug_assert!(
            self.contains(a),
            "element {a:#x} out of field GF(2^{})",
            self.m
        );
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        self.check(a);
        self.check(b);
        a ^ b
    }

    /// Field subtraction; identical to addition in characteristic 2.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        self.add(a, b)
    }

    /// Barrett reduction of a carry-less product (degree <= 2m - 2) modulo
    /// the field polynomial: two carry-less multiplications by the
    /// precomputed `mu`, no data-dependent loop.
    ///
    /// Exactness: write `c = q·p + r`. With `mu = floor(x^(2m)/p)` one gets
    /// `floor(floor(c/x^m)·mu / x^m) = q` for every `deg c <= 2m - 1`, so the
    /// final XOR cancels all bits of degree >= m.
    #[inline]
    fn barrett_reduce(&self, c: u128) -> u64 {
        // deg c <= 2m - 2 <= 62, so c fits in 64 bits.
        let c = c as u64;
        let q1 = c >> self.m;
        let q2 = (self.clmul)(q1, self.mu) as u64;
        let q = q2 >> self.m;
        let r = c ^ (self.clmul)(q, self.poly) as u64;
        debug_assert!(r < self.order, "Barrett reduction out of range");
        r
    }

    /// The reference multiplication: per-call feature detection and
    /// shift-loop reduction, regardless of the field's resolved backend.
    /// This is the seed implementation, kept as ground truth for the
    /// property tests and as the benchmark baseline.
    pub fn mul_reference(&self, a: u64, b: u64) -> u64 {
        self.check(a);
        self.check(b);
        reduce_naive(clmul_detect_per_call(a, b), self.poly, self.m)
    }

    /// Fused multiply + Barrett reduce on the hardware path: all three
    /// PCLMULQDQ issues inline into a single `target_feature` function, so a
    /// Barrett multiplication is one call with no function-pointer hops.
    ///
    /// # Safety
    /// Callers must ensure `self.hw_clmul` is set (PCLMULQDQ detected).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn mul_barrett_hw(&self, a: u64, b: u64) -> u64 {
        let c = clmul_pclmul(a, b) as u64;
        let q = (clmul_pclmul(c >> self.m, self.mu) as u64) >> self.m;
        c ^ clmul_pclmul(q, self.poly) as u64
    }

    /// Pairwise slice multiply on the hardware Barrett path; the whole loop
    /// lives inside one `target_feature` region.
    ///
    /// # Safety
    /// Callers must ensure `self.hw_clmul` is set (PCLMULQDQ detected).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn mul_slice_hw(&self, dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            self.check(*d);
            self.check(s);
            *d = self.mul_barrett_hw(*d, s);
        }
    }

    /// Scalar slice multiply on the hardware Barrett path.
    ///
    /// # Safety
    /// Callers must ensure `self.hw_clmul` is set (PCLMULQDQ detected).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn scalar_mul_slice_hw(&self, dst: &mut [u64], c: u64) {
        for d in dst.iter_mut() {
            self.check(*d);
            *d = self.mul_barrett_hw(*d, c);
        }
    }

    /// In-place slice square on the hardware Barrett path.
    ///
    /// # Safety
    /// Callers must ensure `self.hw_clmul` is set (PCLMULQDQ detected).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn square_slice_hw(&self, vals: &mut [u64]) {
        for v in vals.iter_mut() {
            self.check(*v);
            *v = self.mul_barrett_hw(*v, *v);
        }
    }

    #[inline]
    fn mul_tables(&self, a: u64, b: u64) -> u64 {
        if a == 0 || b == 0 {
            return 0;
        }
        let la = self.log[a as usize] as usize;
        let lb = self.log[b as usize] as usize;
        self.exp[la + lb] as u64
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.check(a);
        self.check(b);
        match self.backend {
            Backend::Tables => self.mul_tables(a, b),
            // Barrett handles zero operands for free: the product is zero
            // and reduces to zero, so no branch is needed.
            Backend::Barrett => {
                #[cfg(target_arch = "x86_64")]
                if self.hw_clmul {
                    // SAFETY: hw_clmul is only set after runtime detection.
                    return unsafe { self.mul_barrett_hw(a, b) };
                }
                self.barrett_reduce((self.clmul)(a, b))
            }
            Backend::Reference => self.mul_reference(a, b),
        }
    }

    /// Field squaring.
    #[inline]
    pub fn square(&self, a: u64) -> u64 {
        self.check(a);
        match self.backend {
            Backend::Tables => {
                if a == 0 {
                    return 0;
                }
                let la = self.log[a as usize] as usize;
                self.exp[la + la] as u64
            }
            // A carry-less self-product is exactly the GF(2) square.
            Backend::Barrett => {
                #[cfg(target_arch = "x86_64")]
                if self.hw_clmul {
                    // SAFETY: hw_clmul is only set after runtime detection.
                    return unsafe { self.mul_barrett_hw(a, a) };
                }
                self.barrett_reduce((self.clmul)(a, a))
            }
            Backend::Reference => reduce_naive(square_bits(a), self.poly, self.m),
        }
    }

    /// Pairwise in-place multiplication: `dst[i] <- dst[i] * src[i]`.
    ///
    /// The backend dispatch is hoisted out of the loop, which is what makes
    /// this the building block for the batched syndrome kernels in `bch`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn mul_slice(&self, dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
        match self.backend {
            Backend::Tables => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = self.mul_tables(*d, s);
                }
            }
            Backend::Barrett => {
                #[cfg(target_arch = "x86_64")]
                if self.hw_clmul {
                    // SAFETY: hw_clmul is only set after runtime detection.
                    unsafe { self.mul_slice_hw(dst, src) };
                    return;
                }
                let clmul = self.clmul;
                for (d, &s) in dst.iter_mut().zip(src) {
                    self.check(*d);
                    self.check(s);
                    *d = self.barrett_reduce(clmul(*d, s));
                }
            }
            Backend::Reference => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = self.mul_reference(*d, s);
                }
            }
        }
    }

    /// Multiply every element of `dst` by the scalar `c` in place.
    pub fn scalar_mul_slice(&self, dst: &mut [u64], c: u64) {
        self.check(c);
        match self.backend {
            Backend::Tables => {
                if c == 0 {
                    dst.fill(0);
                    return;
                }
                let lc = self.log[c as usize] as usize;
                for d in dst.iter_mut() {
                    if *d != 0 {
                        *d = self.exp[self.log[*d as usize] as usize + lc] as u64;
                    }
                }
            }
            Backend::Barrett => {
                #[cfg(target_arch = "x86_64")]
                if self.hw_clmul {
                    // SAFETY: hw_clmul is only set after runtime detection.
                    unsafe { self.scalar_mul_slice_hw(dst, c) };
                    return;
                }
                let clmul = self.clmul;
                for d in dst.iter_mut() {
                    self.check(*d);
                    *d = self.barrett_reduce(clmul(*d, c));
                }
            }
            Backend::Reference => {
                for d in dst.iter_mut() {
                    *d = self.mul_reference(*d, c);
                }
            }
        }
    }

    /// Square every element of `vals` in place.
    pub fn square_slice(&self, vals: &mut [u64]) {
        match self.backend {
            Backend::Barrett => {
                #[cfg(target_arch = "x86_64")]
                if self.hw_clmul {
                    // SAFETY: hw_clmul is only set after runtime detection.
                    unsafe { self.square_slice_hw(vals) };
                    return;
                }
                let clmul = self.clmul;
                for v in vals.iter_mut() {
                    self.check(*v);
                    *v = self.barrett_reduce(clmul(*v, *v));
                }
            }
            _ => {
                for v in vals.iter_mut() {
                    *v = self.square(*v);
                }
            }
        }
    }

    /// Exponentiation `a^e` (with `0^0 == 1`).
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        self.check(a);
        if e == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let mut base = a;
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.square(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u64) -> u64 {
        self.check(a);
        assert!(a != 0, "zero has no multiplicative inverse");
        if self.backend == Backend::Tables {
            let la = self.log[a as usize] as u64;
            let group = self.order - 1;
            self.exp[((group - la) % group) as usize] as u64
        } else {
            // a^(2^m - 2)
            self.pow(a, self.order - 2)
        }
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u64, b: u64) -> u64 {
        self.mul(a, self.inv(b))
    }

    /// The trace map `Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1))`, which takes
    /// values in GF(2) (returned as 0 or 1). Used by the Berlekamp trace
    /// root-finding algorithm in the `bch` crate.
    pub fn trace(&self, a: u64) -> u64 {
        self.check(a);
        let mut acc = a;
        let mut cur = a;
        for _ in 1..self.m {
            cur = self.square(cur);
            acc ^= cur;
        }
        debug_assert!(acc == 0 || acc == 1, "trace must land in GF(2)");
        acc
    }

    /// Square root of `a`: in GF(2^m) the Frobenius map is a bijection, so
    /// every element has a unique square root `a^(2^(m-1))`.
    pub fn sqrt(&self, a: u64) -> u64 {
        self.check(a);
        let mut cur = a;
        for _ in 0..(self.m - 1) {
            cur = self.square(cur);
        }
        cur
    }

    /// Stepping Chien search over a table-backed field: find up to
    /// `max_roots` roots of the polynomial with ascending coefficients
    /// `coeffs`, scanning candidates in generator-power order `g^0, g^1, …`.
    ///
    /// The classical stepping formulation keeps one running term per nonzero
    /// coefficient in the *log domain*: evaluating at the next power of `g`
    /// is one add (+ conditional wrap) and one antilog lookup per
    /// coefficient, instead of a full Horner chain with two log lookups per
    /// multiply. Returns `None` when the field has no tables (large fields
    /// use the Berlekamp trace algorithm instead).
    pub fn chien_search(&self, coeffs: &[u64], max_roots: usize) -> Option<Vec<u64>> {
        if self.backend != Backend::Tables {
            return None;
        }
        let group = (self.order - 1) as u32;
        // One (step, log) pair per nonzero coefficient: the term for x^j
        // starts at log(c_j) and advances by j per candidate.
        let mut terms: Vec<(u32, u32)> = coeffs
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(j, &c)| {
                self.check(c);
                ((j as u64 % group as u64) as u32, self.log[c as usize])
            })
            .collect();
        let mut roots = Vec::new();
        if terms.is_empty() || max_roots == 0 {
            return Some(roots);
        }
        for i in 0..group {
            let mut acc = 0u64;
            for &(_, lg) in terms.iter() {
                acc ^= self.exp[lg as usize] as u64;
            }
            if acc == 0 {
                roots.push(self.exp[i as usize] as u64); // the candidate g^i
                if roots.len() == max_roots {
                    break;
                }
            }
            for t in terms.iter_mut() {
                let next = t.1 + t.0;
                t.1 = if next >= group { next - group } else { next };
            }
        }
        Some(roots)
    }

    /// Iterator over all nonzero field elements (1 ..= 2^m - 1).
    pub fn nonzero_elements(&self) -> impl Iterator<Item = u64> {
        1..self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_entries_are_irreducible() {
        for m in MIN_M..=MAX_M {
            let p = IRREDUCIBLE[(m - MIN_M) as usize];
            assert!(
                is_irreducible(p, m),
                "table polynomial {p:#x} for m={m} is not irreducible"
            );
        }
    }

    #[test]
    fn reducible_polynomials_are_rejected() {
        // x^4 + 1 = (x+1)^4 is reducible.
        assert!(!is_irreducible(0b10001, 4));
        // x^2 factors trivially.
        assert!(!is_irreducible(0b100, 2));
        // x^2 + x + 1 is the unique irreducible quadratic.
        assert!(is_irreducible(0b111, 2));
        // wrong degree encoding
        assert!(!is_irreducible(0b111, 3));
    }

    #[test]
    fn small_field_mul_matches_reference() {
        let f = Field::new(8);
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(f.mul(a, b), f.mul_reference(a, b), "mismatch at {a} * {b}");
            }
        }
    }

    #[test]
    fn barrett_backend_matches_reference_exhaustively_small() {
        let f = Field::with_backend(6, BackendChoice::Barrett);
        for a in 0..64u64 {
            for b in 0..64u64 {
                assert_eq!(f.mul(a, b), f.mul_reference(a, b), "mismatch at {a} * {b}");
            }
        }
    }

    #[test]
    fn barrett_mu_has_degree_m() {
        for m in MIN_M..=MAX_M {
            let poly = irreducible_poly(m);
            let mu = barrett_mu(poly, m);
            assert_eq!(deg2(mu), m, "mu degree wrong for m={m}");
        }
    }

    #[test]
    fn gf16_inverse_and_identity() {
        let f = Field::new(4);
        for a in 1..16u64 {
            let inv = f.inv(a);
            assert_eq!(f.mul(a, inv), 1, "a * a^-1 != 1 for a={a}");
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.mul(a, 0), 0);
        }
    }

    #[test]
    fn large_field_inverse() {
        let f = Field::new(32);
        for a in [1u64, 2, 3, 0xDEADBEEF, 0xFFFF_FFFE, 0x8000_0001] {
            let inv = f.inv(a);
            assert_eq!(f.mul(a, inv), 1, "a * a^-1 != 1 for a={a:#x}");
        }
    }

    #[test]
    fn distributivity_small_field() {
        let f = Field::new(6);
        for a in 0..64u64 {
            for b in 0..64u64 {
                let c = (a * 31 + b * 17 + 5) % 64;
                assert_eq!(
                    f.mul(a, f.add(b, c)),
                    f.add(f.mul(a, b), f.mul(a, c)),
                    "distributivity failed at a={a}, b={b}, c={c}"
                );
            }
        }
    }

    #[test]
    fn square_equals_self_mul() {
        for m in [3u32, 8, 11, 13, 17, 24, 32] {
            let f = Field::new(m);
            let samples: Vec<u64> = (0..200)
                .map(|i| (i * 2654435761u64 + 12345) % f.order())
                .collect();
            for a in samples {
                assert_eq!(
                    f.square(a),
                    f.mul(a, a),
                    "square mismatch for a={a:#x}, m={m}"
                );
            }
        }
    }

    #[test]
    fn slice_ops_match_scalar_ops() {
        for choice in [
            BackendChoice::Tables,
            BackendChoice::Barrett,
            BackendChoice::Reference,
        ] {
            let f = Field::with_backend(11, choice);
            let xs: Vec<u64> = (0..257u64).map(|i| (i * 48271 + 11) % f.order()).collect();
            let ys: Vec<u64> = (0..257u64).map(|i| (i * 69621 + 3) % f.order()).collect();
            let mut prod = xs.clone();
            f.mul_slice(&mut prod, &ys);
            for i in 0..xs.len() {
                assert_eq!(
                    prod[i],
                    f.mul(xs[i], ys[i]),
                    "mul_slice[{i}] backend {choice:?}"
                );
            }
            let mut sq = xs.clone();
            f.square_slice(&mut sq);
            for i in 0..xs.len() {
                assert_eq!(
                    sq[i],
                    f.square(xs[i]),
                    "square_slice[{i}] backend {choice:?}"
                );
            }
            let mut scaled = xs.clone();
            f.scalar_mul_slice(&mut scaled, 0x2A7);
            for i in 0..xs.len() {
                assert_eq!(
                    scaled[i],
                    f.mul(xs[i], 0x2A7),
                    "scalar_mul_slice[{i}] backend {choice:?}"
                );
            }
        }
    }

    #[test]
    fn chien_search_finds_generator_power_roots() {
        // Pin the tables backend: the Chien walk needs the log/antilog
        // tables, and `Field::new` may be redirected by PBS_FORCE_BACKEND.
        let f = Field::with_backend(11, BackendChoice::Tables);
        // Polynomial with roots {3, 500, 1999}: (x+3)(x+500)(x+1999) built by
        // convolution through the field itself.
        let roots = [3u64, 500, 1999];
        let mut coeffs = vec![1u64];
        for &r in &roots {
            let mut next = vec![0u64; coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                next[i + 1] ^= c;
                next[i] ^= f.mul(c, r);
            }
            coeffs = next;
        }
        let mut found = f.chien_search(&coeffs, 3).unwrap();
        found.sort_unstable();
        assert_eq!(found, vec![3, 500, 1999]);
        // Non-table fields report None so callers fall back.
        let big = Field::new(32);
        assert!(big.chien_search(&[1, 1], 1).is_none());
    }

    #[test]
    fn backend_names_are_stable() {
        // Explicit choices are never overridden by PBS_FORCE_BACKEND, so
        // these hold in every CI matrix cell.
        let tables = Field::with_backend(8, BackendChoice::Tables);
        assert_eq!(tables.backend_name(), "tables");
        let barrett = Field::with_backend(8, BackendChoice::Barrett);
        assert!(barrett.backend_name().ends_with("barrett"));
        assert_eq!(
            Field::with_backend(8, BackendChoice::Reference).backend_name(),
            "reference"
        );
        assert!(tables.generator().is_some());
        assert!(barrett.generator().is_none());
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let f = Field::new(10);
        let a = 0x2AB;
        let mut acc = 1u64;
        for e in 0..50u64 {
            assert_eq!(f.pow(a, e), acc, "pow mismatch at exponent {e}");
            acc = f.mul(acc, a);
        }
    }

    #[test]
    fn frobenius_is_additive_and_trace_in_gf2() {
        let f = Field::new(12);
        for i in 0..500u64 {
            let a = (i * 48271 + 7) % f.order();
            let b = (i * 69621 + 3) % f.order();
            assert_eq!(f.square(f.add(a, b)), f.add(f.square(a), f.square(b)));
            let t = f.trace(a);
            assert!(t == 0 || t == 1);
        }
    }

    #[test]
    fn sqrt_inverts_square() {
        for m in [5u32, 11, 20, 32] {
            let f = Field::new(m);
            for i in 0..100u64 {
                let a = i.wrapping_mul(6364136223846793005).wrapping_add(1) % f.order();
                assert_eq!(f.sqrt(f.square(a)), a, "sqrt(square(a)) != a for m={m}");
            }
        }
    }

    #[test]
    fn order_and_bounds() {
        let f = Field::new(11);
        assert_eq!(f.order(), 2048);
        assert_eq!(f.nonzero_count(), 2047);
        assert_eq!(f.m(), 11);
        assert!(f.contains(2047));
        assert!(!f.contains(2048));
    }

    #[test]
    #[should_panic(expected = "zero has no multiplicative inverse")]
    fn inverse_of_zero_panics() {
        Field::new(8).inv(0);
    }

    #[test]
    #[should_panic(expected = "field degree m must be in")]
    fn out_of_range_degree_panics() {
        Field::new(2);
    }

    #[test]
    #[should_panic(expected = "log/antilog tables are limited")]
    fn forced_tables_reject_large_fields() {
        Field::with_backend(20, BackendChoice::Tables);
    }
}
