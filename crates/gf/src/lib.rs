//! Binary extension-field arithmetic GF(2^m) and polynomials over it.
//!
//! This crate is the lowest-level substrate of the PBS reproduction. Every
//! BCH-style syndrome sketch in the workspace (the PBS parity-bitmap sketch
//! and the PinSketch baseline) is decoded with arithmetic from this crate:
//!
//! * [`Field`] — a binary extension field GF(2^m) for `3 <= m <= 32`,
//!   with log/antilog tables for small `m` and carry-less multiplication
//!   with Barrett reduction for large `m`. The backend (tables, hardware
//!   PCLMUL + Barrett, or portable + Barrett) is resolved once at
//!   construction and cached; see the `field` module docs. Batched entry
//!   points (`mul_slice`, `square_slice`, `eval_batch`) amortize dispatch
//!   for the syndrome kernels in `bch`.
//! * [`Poly`] — dense polynomials over a [`Field`], with the operations a
//!   Berlekamp–Massey decoder and a Berlekamp-trace root finder need:
//!   multiplication, remainder, gcd, evaluation, formal derivative and
//!   modular squaring.
//!
//! Field elements are represented as `u64` values whose low `m` bits are the
//! coefficients of the polynomial-basis representation. The zero element is
//! `0`; the multiplicative identity is `1`.
//!
//! # Example
//!
//! ```
//! use gf::Field;
//!
//! let f = Field::new(8);
//! let a = 0x53;
//! let b = 0xCA;
//! let c = f.mul(a, b);
//! assert_eq!(f.mul(c, f.inv(b)), a);
//! ```

#![warn(missing_docs)]

mod field;
mod poly;

pub use field::{irreducible_poly, is_irreducible, BackendChoice, Field};
pub use poly::{Poly, KARATSUBA_CUTOFF};
