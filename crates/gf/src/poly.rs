//! Dense polynomials over GF(2^m).
//!
//! The representation is a coefficient vector in *ascending* degree order
//! (`coeffs[i]` is the coefficient of `x^i`), normalized so the leading
//! coefficient is nonzero (the zero polynomial is the empty vector).

use crate::Field;

/// Operand length below which [`Poly::mul`] stays on the row-batched
/// schoolbook kernel; Karatsuba's extra passes only pay off above it.
pub const KARATSUBA_CUTOFF: usize = 32;

/// Row-batched schoolbook product of two non-empty coefficient slices:
/// `scratch = b · a_i` via one [`Field::scalar_mul_slice`] per nonzero row,
/// XORed into the output at offset `i`.
fn schoolbook_coeffs(a: &[u64], b: &[u64], f: &Field) -> Vec<u64> {
    debug_assert!(!a.is_empty() && !b.is_empty());
    // Keep the shorter operand as the row index so the slice kernel runs
    // over the longer one.
    let (rows, cols) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = vec![0u64; a.len() + b.len() - 1];
    let mut scratch = vec![0u64; cols.len()];
    for (i, &r) in rows.iter().enumerate() {
        if r == 0 {
            continue;
        }
        scratch.copy_from_slice(cols);
        f.scalar_mul_slice(&mut scratch, r);
        for (o, &s) in out[i..].iter_mut().zip(&scratch) {
            *o ^= s;
        }
    }
    out
}

/// Size-dispatched product of two non-empty coefficient slices (ascending
/// degree order). The result has length `a.len() + b.len() - 1` and may
/// carry high zero coefficients; callers normalize.
fn mul_coeffs(a: &[u64], b: &[u64], f: &Field) -> Vec<u64> {
    if a.len().min(b.len()) <= KARATSUBA_CUTOFF {
        return schoolbook_coeffs(a, b, f);
    }
    // Split both operands at half the longer length: a = a0 + x^h·a1,
    // b = b0 + x^h·b1. In characteristic 2,
    //   a·b = z0 + x^h·(z1 − z0 − z2) + x^2h·z2
    // with z0 = a0·b0, z2 = a1·b1, z1 = (a0+a1)(b0+b1) and every ± an XOR.
    let h = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(a.len().min(h));
    let (b0, b1) = b.split_at(b.len().min(h));

    let z0 = mul_coeffs(a0, b0, f);
    let z2 = if a1.is_empty() || b1.is_empty() {
        Vec::new()
    } else {
        mul_coeffs(a1, b1, f)
    };

    let xor_halves = |lo: &[u64], hi: &[u64]| -> Vec<u64> {
        let mut s = vec![0u64; lo.len().max(hi.len())];
        s[..lo.len()].copy_from_slice(lo);
        for (d, &v) in s.iter_mut().zip(hi) {
            *d ^= v;
        }
        s
    };
    let asum = xor_halves(a0, a1);
    let bsum = xor_halves(b0, b1);
    let mut z1 = mul_coeffs(&asum, &bsum, f);
    for (d, &v) in z1.iter_mut().zip(&z0) {
        *d ^= v;
    }
    for (d, &v) in z1.iter_mut().zip(&z2) {
        *d ^= v;
    }

    let mut out = vec![0u64; a.len() + b.len() - 1];
    for (d, &v) in out.iter_mut().zip(&z0) {
        *d ^= v;
    }
    for (d, &v) in out[h..].iter_mut().zip(&z1) {
        *d ^= v;
    }
    if !z2.is_empty() {
        for (d, &v) in out[2 * h..].iter_mut().zip(&z2) {
            *d ^= v;
        }
    }
    out
}

/// A polynomial over a [`Field`].
///
/// All operations take the field explicitly so a `Poly` stays a plain value
/// type; mixing polynomials built for different fields is a logic error that
/// debug assertions catch (coefficients out of range).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Poly {
    coeffs: Vec<u64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly { coeffs: vec![1] }
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        Poly { coeffs: vec![0, 1] }
    }

    /// Build a polynomial from ascending-degree coefficients, trimming
    /// leading zeros.
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        let mut p = Poly { coeffs };
        p.normalize();
        p
    }

    /// The constant polynomial `c`.
    pub fn constant(c: u64) -> Self {
        if c == 0 {
            Self::zero()
        } else {
            Poly { coeffs: vec![c] }
        }
    }

    /// The monomial `c * x^d`.
    pub fn monomial(c: u64, d: usize) -> Self {
        if c == 0 {
            return Self::zero();
        }
        let mut coeffs = vec![0u64; d + 1];
        coeffs[d] = c;
        Poly { coeffs }
    }

    fn normalize(&mut self) {
        while self.coeffs.last() == Some(&0) {
            self.coeffs.pop();
        }
    }

    /// `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree of the polynomial; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Degree as an `usize`, treating the zero polynomial as degree 0.
    pub fn degree_or_zero(&self) -> usize {
        self.degree().unwrap_or(0)
    }

    /// Coefficient of `x^i` (0 if beyond the stored degree).
    pub fn coeff(&self, i: usize) -> u64 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// Leading coefficient (0 for the zero polynomial).
    pub fn leading(&self) -> u64 {
        self.coeffs.last().copied().unwrap_or(0)
    }

    /// Ascending-degree coefficient slice.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Polynomial addition (XOR of coefficients in characteristic 2).
    pub fn add(&self, other: &Poly, f: &Field) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(f.add(self.coeff(i), other.coeff(i)));
        }
        Poly::from_coeffs(out)
    }

    /// Scale every coefficient by `c`, through the batched
    /// [`Field::scalar_mul_slice`] kernel (one backend dispatch per call).
    pub fn scale(&self, c: u64, f: &Field) -> Poly {
        if c == 0 {
            return Poly::zero();
        }
        let mut coeffs = self.coeffs.clone();
        f.scalar_mul_slice(&mut coeffs, c);
        Poly::from_coeffs(coeffs)
    }

    /// Polynomial multiplication.
    ///
    /// Dispatches on size: operands below [`KARATSUBA_CUTOFF`] use the
    /// row-batched schoolbook kernel (each row is one
    /// [`Field::scalar_mul_slice`] call, so the backend dispatch is paid per
    /// row, not per coefficient pair); larger operands recurse through
    /// Karatsuba, which in characteristic 2 needs only XORs besides its
    /// three half-size products — O(n^1.585) instead of O(n²).
    pub fn mul(&self, other: &Poly, f: &Field) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        Poly::from_coeffs(mul_coeffs(&self.coeffs, &other.coeffs, f))
    }

    /// Schoolbook polynomial multiplication, O(deg_a · deg_b).
    ///
    /// Kept public as the ground truth for the Karatsuba-vs-schoolbook
    /// property tests and as the baseline the `BENCH_decode_path.json`
    /// `poly_mul` speedup is measured against (this is the seed's exact
    /// per-coefficient-pair loop).
    pub fn mul_schoolbook(&self, other: &Poly, f: &Field) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                out[i + j] ^= f.mul(a, b);
            }
        }
        Poly::from_coeffs(out)
    }

    /// Multiply by the monomial `x^k`.
    pub fn shift(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0u64; k];
        out.extend_from_slice(&self.coeffs);
        Poly { coeffs: out }
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Poly, f: &Field) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let dd = divisor.degree().unwrap();
        if self.is_zero() || self.degree().unwrap() < dd {
            return (Poly::zero(), self.clone());
        }
        let lead_inv = f.inv(divisor.leading());
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0u64; rem.len() - dd];
        // One reusable row buffer: each elimination step is `divisor · q`
        // through the batched scalar kernel, XORed into the remainder window.
        let mut scratch = vec![0u64; divisor.coeffs.len()];
        for i in (dd..rem.len()).rev() {
            let c = rem[i];
            if c == 0 {
                continue;
            }
            let q = f.mul(c, lead_inv);
            quot[i - dd] = q;
            scratch.copy_from_slice(&divisor.coeffs);
            f.scalar_mul_slice(&mut scratch, q);
            for (r, &s) in rem[i - dd..].iter_mut().zip(&scratch) {
                *r ^= s;
            }
        }
        (Poly::from_coeffs(quot), Poly::from_coeffs(rem))
    }

    /// Remainder of `self mod divisor`.
    pub fn rem(&self, divisor: &Poly, f: &Field) -> Poly {
        self.div_rem(divisor, f).1
    }

    /// Monic greatest common divisor.
    pub fn gcd(&self, other: &Poly, f: &Field) -> Poly {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b, f);
            a = b;
            b = r;
        }
        a.into_monic(f)
    }

    /// Divide by the leading coefficient so the polynomial is monic.
    pub fn into_monic(self, f: &Field) -> Poly {
        if self.is_zero() {
            return self;
        }
        let lead = self.leading();
        if lead == 1 {
            return self;
        }
        self.scale(f.inv(lead), f)
    }

    /// Evaluate the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: u64, f: &Field) -> u64 {
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = f.add(f.mul(acc, x), c);
        }
        acc
    }

    /// Evaluate the polynomial at every point of `xs`.
    ///
    /// Runs four interleaved Horner chains so the field multiplications of
    /// independent points overlap, and amortizes the backend dispatch via
    /// [`Field::mul_slice`]. Falls back to plain Horner for the remainder.
    pub fn eval_batch(&self, xs: &[u64], f: &Field) -> Vec<u64> {
        let mut out = Vec::with_capacity(xs.len());
        let mut chunks = xs.chunks_exact(4);
        for chunk in &mut chunks {
            let pts = [chunk[0], chunk[1], chunk[2], chunk[3]];
            let mut acc = [0u64; 4];
            for &c in self.coeffs.iter().rev() {
                f.mul_slice(&mut acc, &pts);
                for a in acc.iter_mut() {
                    *a ^= c;
                }
            }
            out.extend_from_slice(&acc);
        }
        for &x in chunks.remainder() {
            out.push(self.eval(x, f));
        }
        out
    }

    /// Formal derivative. In characteristic 2 the even-degree terms vanish
    /// and the odd-degree coefficients move down one degree.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        let mut out = vec![0u64; self.coeffs.len() - 1];
        for (i, v) in out.iter_mut().enumerate() {
            // coefficient of x^i in the derivative is (i+1) * coeffs[i+1];
            // (i+1) mod 2 is 1 only when i is even.
            if i % 2 == 0 {
                *v = self.coeffs[i + 1];
            }
        }
        Poly::from_coeffs(out)
    }

    /// `self * other mod modulus`, without materializing the full product
    /// degree when the modulus is much smaller.
    pub fn mulmod(&self, other: &Poly, modulus: &Poly, f: &Field) -> Poly {
        self.mul(other, f).rem(modulus, f)
    }

    /// `self^2 mod modulus`. Squaring in characteristic 2 is the Frobenius
    /// map applied to each coefficient with degrees doubled, which is much
    /// cheaper than a general multiplication.
    pub fn square_mod(&self, modulus: &Poly, f: &Field) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0u64; 2 * self.coeffs.len() - 1];
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                out[2 * i] = f.square(c);
            }
        }
        Poly::from_coeffs(out).rem(modulus, f)
    }

    /// Compute the roots of the polynomial by exhaustively evaluating at
    /// every nonzero field element. Suitable only for small fields
    /// (`2^m` up to a few million); the `bch` crate uses a trace-based
    /// splitting algorithm for large fields.
    pub fn roots_exhaustive(&self, f: &Field) -> Vec<u64> {
        let mut roots = Vec::new();
        if self.is_zero() {
            return roots;
        }
        for x in f.nonzero_elements() {
            if self.eval(x, f) == 0 {
                roots.push(x);
            }
        }
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f8() -> Field {
        Field::new(8)
    }

    #[test]
    fn construction_normalizes_leading_zeros() {
        let p = Poly::from_coeffs(vec![1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1, 2]);
        assert!(Poly::from_coeffs(vec![0, 0]).is_zero());
        assert_eq!(Poly::zero().degree(), None);
    }

    #[test]
    fn add_is_involutive() {
        let f = f8();
        let a = Poly::from_coeffs(vec![3, 7, 11]);
        let b = Poly::from_coeffs(vec![5, 7]);
        let s = a.add(&b, &f);
        assert_eq!(s.add(&b, &f), a);
        assert_eq!(a.add(&a, &f), Poly::zero());
    }

    #[test]
    fn mul_matches_known_product() {
        let f = f8();
        // (x + 1)(x + 1) = x^2 + 1 in characteristic 2
        let p = Poly::from_coeffs(vec![1, 1]);
        let sq = p.mul(&p, &f);
        assert_eq!(sq, Poly::from_coeffs(vec![1, 0, 1]));
    }

    #[test]
    fn div_rem_reconstructs() {
        let f = f8();
        let a = Poly::from_coeffs(vec![7, 2, 0, 5, 9, 1]);
        let b = Poly::from_coeffs(vec![3, 0, 1]);
        let (q, r) = a.div_rem(&b, &f);
        let back = q.mul(&b, &f).add(&r, &f);
        assert_eq!(back, a);
        assert!(r.degree_or_zero() < b.degree().unwrap());
    }

    #[test]
    fn gcd_of_product_with_common_factor() {
        let f = f8();
        let common = Poly::from_coeffs(vec![5, 1]); // x + 5
        let a = common.mul(&Poly::from_coeffs(vec![9, 0, 1]), &f);
        let b = common.mul(&Poly::from_coeffs(vec![1, 1]), &f);
        let g = a.gcd(&b, &f);
        // gcd should be divisible by (x + 5) and vice versa: compare monic forms.
        assert_eq!(g, common.clone().into_monic(&f));
    }

    #[test]
    fn eval_and_roots_of_linear_product() {
        let f = f8();
        // Build (x - 3)(x - 17)(x - 200); in char 2, -a == a.
        let roots = [3u64, 17, 200];
        let mut p = Poly::one();
        for &r in &roots {
            p = p.mul(&Poly::from_coeffs(vec![r, 1]), &f);
        }
        for &r in &roots {
            assert_eq!(p.eval(r, &f), 0);
        }
        assert_ne!(p.eval(5, &f), 0);
        let mut found = p.roots_exhaustive(&f);
        found.sort_unstable();
        assert_eq!(found, vec![3, 17, 200]);
    }

    #[test]
    fn derivative_drops_even_terms() {
        // p = 1 + x + x^2 + x^3 -> p' = 1 + x^2 (char 2)
        let p = Poly::from_coeffs(vec![1, 1, 1, 1]);
        assert_eq!(p.derivative(), Poly::from_coeffs(vec![1, 0, 1]));
        assert_eq!(Poly::constant(7).derivative(), Poly::zero());
    }

    #[test]
    fn square_mod_matches_mulmod() {
        let f = Field::new(11);
        let modulus = Poly::from_coeffs(vec![3, 0, 1, 0, 0, 1]); // degree 5
        let p = Poly::from_coeffs(vec![100, 2000, 5, 1]);
        assert_eq!(p.square_mod(&modulus, &f), p.mulmod(&p, &modulus, &f));
    }

    #[test]
    fn monomial_and_shift() {
        let f = f8();
        let m = Poly::monomial(5, 3);
        assert_eq!(m.degree(), Some(3));
        assert_eq!(m.coeff(3), 5);
        let p = Poly::from_coeffs(vec![1, 2]);
        assert_eq!(p.shift(2), Poly::from_coeffs(vec![0, 0, 1, 2]));
        assert_eq!(p.shift(2), p.mul(&Poly::monomial(1, 2), &f));
    }

    #[test]
    fn eval_batch_matches_pointwise_eval() {
        for m in [8u32, 11, 32] {
            let f = Field::new(m);
            let p = Poly::from_coeffs((1..=9u64).map(|c| c % f.order()).collect());
            let xs: Vec<u64> = (0..23u64).map(|i| (i * 0x9E37 + 5) % f.order()).collect();
            let batch = p.eval_batch(&xs, &f);
            for (i, &x) in xs.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    p.eval(x, &f),
                    "eval_batch mismatch at x={x}, m={m}"
                );
            }
        }
        let f = Field::new(8);
        assert!(Poly::zero()
            .eval_batch(&[1, 2, 3], &f)
            .iter()
            .all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "polynomial division by zero")]
    fn division_by_zero_panics() {
        let f = f8();
        let a = Poly::one();
        let _ = a.div_rem(&Poly::zero(), &f);
    }
}
