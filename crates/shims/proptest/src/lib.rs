//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]` headers), integer
//! range / `any` / `Just` / `prop_oneof!` strategies, `prop::collection::vec`
//! and `proptest::collection::hash_set`, plus `prop_assert!`,
//! `prop_assert_eq!` and `prop_assume!`.
//!
//! Inputs are drawn from a splitmix64 stream seeded by the test's module
//! path and name, so runs are fully deterministic. No shrinking is
//! performed; a failing case panics with the property's message.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Per-property configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*` failed with the given message.
    Fail(String),
}

/// Deterministic splitmix64 input stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from the test's fully qualified name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Box a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of the same value type.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Union over the given non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Tuples of strategies sample component-wise, as in real proptest (used
/// e.g. for `prop::collection::vec((strategy_a, strategy_b), len)`).
macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!(
    (S0 / 0, S1 / 1),
    (S0 / 0, S1 / 1, S2 / 2),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: an unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as u64;
                let hi = self.end as u64;
                assert!(lo < hi, "empty range strategy");
                (lo + rng.next_u64() % (hi - lo)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as u64;
                let hi = *self.end() as u64;
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use super::{HashSet, Strategy, TestRng};

    /// Ranges accepted as collection size specifications.
    pub trait SizeRange {
        /// Draw a target length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + (rng.next_u64() % (self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy producing a `HashSet` of distinct values drawn from `element`.
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample_len(rng);
            let mut out = HashSet::with_capacity(target);
            // Bounded retries so tiny domains (e.g. 1..=3) cannot loop
            // forever; the set may come out smaller, which every property
            // written against a set tolerates.
            let mut budget = 20 * (target + 1);
            while out.len() < target && budget > 0 {
                out.insert(self.element.sample(rng));
                budget -= 1;
            }
            out
        }
    }

    /// `HashSet` strategy with element strategy and size range.
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: super::Hash + Eq,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }
}

/// The usual proptest imports; also re-exports the crate root as `prop`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Define deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed at case {}: {}", stringify!($name), case, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..10, b in 0usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u32), Just(7u32)]) {
            prop_assert!(v == 1 || v == 7);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u64>(), 2..5),
            s in prop::collection::hash_set(0u64..1000, 0..=8),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(s.len() <= 8);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
