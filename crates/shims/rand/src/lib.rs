//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) slice of the rand 0.9 API the workspace actually uses:
//! `StdRng::seed_from_u64`, `Rng::random::<T>()`, `Rng::random_range`, and
//! `SliceRandom::shuffle`. The generator is xoshiro256** seeded via
//! splitmix64 — deterministic, high quality, and more than good enough for
//! workload generation and statistical tests.

/// Low-level source of random `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `random_range` endpoints.
pub trait RangeSample: Copy + PartialOrd {
    /// Widen to `u64` for sampling.
    fn to_u64(self) -> u64;
    /// Narrow back from `u64`.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_range_sample!(u8, u16, u32, u64, usize, i32, i64);

/// Ranges `random_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: RangeSample> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "random_range called with an empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: RangeSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "random_range called with an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.next_u64() % (span + 1))
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's `StdRng`;
    /// the stream differs from the real crate but all workspace uses only
    /// need determinism and uniformity, not stream compatibility).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`).
pub mod seq {
    use super::RngCore;

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u64..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
