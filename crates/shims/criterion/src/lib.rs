//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the small criterion API surface the workspace's benches use —
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!` — as a simple wall-clock harness:
//! each benchmark is warmed up, then timed in growing batches until a
//! minimum measurement window is reached, and the best observed ns/iter is
//! printed. No statistics, plots, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Minimum measurement window per sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(40);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }
}

/// Identifier of one benchmark within a group (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Benchmark a closure that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        run_one(&label, self.samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmark a plain closure within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, &mut f);
        self
    }

    /// End the group (printing happens eagerly; this is a no-op for drop
    /// ordering parity with real criterion).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Warm-up and batch-size calibration: grow the batch until one batch
    // fills the sample window.
    let mut iters: u64 = 1;
    let calibration;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_WINDOW || iters >= 1 << 24 {
            calibration = b.elapsed;
            break;
        }
        // Aim straight for the window with a 2x cap on growth per step.
        iters = iters.saturating_mul(2);
    }

    let mut best = calibration.as_nanos() as f64 / iters as f64;
    for _ in 1..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
    }
    println!("bench {label:<48} {best:>14.1} ns/iter  ({iters} iters/sample, {samples} samples)");
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's `black_box` location in older versions.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
