//! The PinSketch baseline \[13\] and its partitioned variant PinSketch/WP (§8.3).
//!
//! PinSketch views a set `S ⊆ U` as a `|U|`-bit characteristic bitmap and
//! sends a BCH syndrome sketch of that bitmap: `t` syndromes over
//! GF(2^m) with `m = log|U|`, i.e. `t·log|U|` bits. Because the sketch is
//! linear, Bob combines Alice's sketch with his own and decodes the
//! difference directly; decoding costs `O(t²)` field operations plus root
//! finding, which is the `O(d²)` computational overhead the paper holds
//! against ECC-based schemes.
//!
//! Two reconcilers are provided:
//!
//! * [`PinSketch`] — the plain scheme: `t = ⌈γ·d̂⌉` with the ToW estimate
//!   `d̂` and γ = 1.38, exactly the §8.1.1 parameterization.
//! * [`PinSketchWp`] — "PinSketch with partition" (§8.3): the PBS grouping
//!   trick applied to PinSketch. Sets are hash-partitioned into `g = ⌈d/δ⌉`
//!   groups and each group pair gets its own small sketch with the same `t`
//!   used by PBS; decoding failures trigger the same three-way split. Its
//!   communication is higher than PBS because each "bit error" costs
//!   `log|U|` bits instead of `log n` (§8.3).

//!
//! # Example
//!
//! ```
//! use pinsketch::{PinSketch, PinSketchConfig};
//!
//! let alice: Vec<u64> = (1..=500).collect();
//! let bob: Vec<u64> = (16..=500).collect(); // d = 15
//! let scheme = PinSketch::new(PinSketchConfig::default());
//! let outcome = scheme.reconcile_with_capacity(&alice, &bob, 15, 5);
//! assert!(outcome.claimed_success);
//! let mut diff = outcome.recovered.clone();
//! diff.sort_unstable();
//! assert_eq!(diff, (1..=15).collect::<Vec<u64>>());
//! ```

#![warn(missing_docs)]

use analysis::optimize_parameters;
use bch::{BchCodec, Sketch};
use estimator::{Estimator, TowEstimator, RECOMMENDED_INFLATION};
use protocol::{Direction, ReconcileOutcome, Reconciler, TimingStats, Transcript};
use std::collections::HashSet;
use std::time::Instant;
use xhash::{derive_seed, PartitionHasher};

/// Configuration shared by both PinSketch variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinSketchConfig {
    /// Element signature width `log|U|`; the sketch field is GF(2^`log|U|`).
    pub universe_bits: u32,
    /// Number of ToW sketches used to estimate `d` when it is not given.
    pub estimator_sketches: usize,
    /// Safety factor applied to the estimate (γ = 1.38 in the paper).
    pub inflation: f64,
}

impl Default for PinSketchConfig {
    fn default() -> Self {
        PinSketchConfig {
            universe_bits: 32,
            estimator_sketches: estimator::DEFAULT_SKETCH_COUNT,
            inflation: RECOMMENDED_INFLATION,
        }
    }
}

/// The plain PinSketch reconciler.
#[derive(Debug, Clone, Default)]
pub struct PinSketch {
    config: PinSketchConfig,
}

impl PinSketch {
    /// Create a PinSketch reconciler.
    pub fn new(config: PinSketchConfig) -> Self {
        PinSketch { config }
    }

    /// Reconcile with a known difference cardinality: the sketch capacity is
    /// set to exactly `t` (no estimator round).
    pub fn reconcile_with_capacity(
        &self,
        alice: &[u64],
        bob: &[u64],
        t: usize,
        _seed: u64,
    ) -> ReconcileOutcome {
        let cfg = self.config;
        let t = t.max(1);
        let mut transcript = Transcript::new();
        let codec = BchCodec::new(cfg.universe_bits, t);

        let encode_start = Instant::now();
        let sketch_a = codec.sketch_slice(alice);
        let sketch_b = codec.sketch_slice(bob);
        let encode = encode_start.elapsed();

        transcript.send_bits(
            Direction::AliceToBob,
            "pinsketch",
            sketch_a.wire_bits(cfg.universe_bits),
        );

        let decode_start = Instant::now();
        let mut diff_sketch: Sketch = sketch_b.clone();
        diff_sketch.combine(&sketch_a);
        let decoded = codec.decode(&diff_sketch);
        let (recovered, claimed_success) = match decoded {
            Ok(elements) => (elements, true),
            Err(_) => (Vec::new(), false),
        };
        // Bob sends the recovered difference elements back to Alice so she
        // learns A△B (unidirectional reconciliation; d·log|U| bits).
        transcript.send_bits(
            Direction::BobToAlice,
            "difference",
            recovered.len() as u64 * cfg.universe_bits as u64,
        );
        let decode = decode_start.elapsed();

        ReconcileOutcome {
            recovered,
            claimed_success,
            comm: transcript.stats(),
            timing: TimingStats { encode, decode },
            rounds: 1,
        }
    }
}

impl Reconciler for PinSketch {
    fn name(&self) -> &'static str {
        "PinSketch"
    }

    fn reconcile(&self, a: &[u64], b: &[u64], seed: u64) -> ReconcileOutcome {
        // §8.1.1: t = 1.38·d̂ with d̂ from the 128-sketch ToW estimator.
        let cfg = self.config;
        let est_seed = derive_seed(seed, 0xE57);
        let mut ea = TowEstimator::new(cfg.estimator_sketches, est_seed);
        let mut eb = TowEstimator::new(cfg.estimator_sketches, est_seed);
        ea.insert_slice(a);
        eb.insert_slice(b);
        let d_hat = ea.estimate(&eb);
        let t = ((d_hat * cfg.inflation).ceil() as usize).max(1);
        self.reconcile_with_capacity(a, b, t, seed)
    }
}

/// PinSketch with the PBS partition trick (§8.3): `g = ⌈d/δ⌉` group pairs,
/// each reconciled with a small PinSketch of capacity `t`, with three-way
/// splits on decoding failure.
#[derive(Debug, Clone)]
pub struct PinSketchWp {
    config: PinSketchConfig,
    /// Average number of distinct elements per group (δ = 5 like PBS).
    pub delta: usize,
    /// Target rounds used when deriving `t` via the PBS optimizer (so that
    /// PinSketch/WP and PBS use exactly the same `t` and `g`, per §8.3).
    pub target_rounds: u32,
    /// Target success probability (0.99 in Figure 3).
    pub target_success: f64,
    /// Cap on the number of rounds executed.
    pub max_rounds: u32,
}

impl Default for PinSketchWp {
    fn default() -> Self {
        PinSketchWp {
            config: PinSketchConfig::default(),
            delta: analysis::DEFAULT_DELTA,
            target_rounds: analysis::DEFAULT_TARGET_ROUNDS,
            target_success: 0.99,
            max_rounds: 16,
        }
    }
}

impl PinSketchWp {
    /// Create a PinSketch/WP reconciler with the given universe width.
    pub fn new(config: PinSketchConfig) -> Self {
        PinSketchWp {
            config,
            ..Default::default()
        }
    }

    /// Reconcile with a known (or externally estimated) `d`.
    pub fn reconcile_with_known_d(
        &self,
        alice: &[u64],
        bob: &[u64],
        d: usize,
        seed: u64,
    ) -> ReconcileOutcome {
        let cfg = self.config;
        // Use the same (t, g) as PBS would (§8.3: "we use the same δ and t
        // values as in PBS").
        let plan = optimize_parameters(
            d.max(1),
            self.delta,
            self.target_rounds,
            self.target_success,
        )
        .unwrap_or_else(|_| analysis::OptimalParams {
            n: 2047,
            m: 11,
            t: 4 * self.delta,
            groups: analysis::group_count(d, self.delta),
            lower_bound: 0.0,
            objective_bits: 0.0,
        });
        let g = plan.groups;
        let t = plan.t;
        let mut transcript = Transcript::new();
        let codec = BchCodec::new(cfg.universe_bits, t);

        // Group partition (same construction as PBS).
        let group_hasher = PartitionHasher::new(g as u64, derive_seed(seed, 0x6_1201));
        let bucket = |set: &[u64]| {
            let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); g];
            for &e in set {
                buckets[group_hasher.bin(e) as usize].push(e);
            }
            buckets
        };

        let encode_start = Instant::now();
        let alice_groups = bucket(alice);
        let bob_groups = bucket(bob);
        // Groups are independent: sketch them with `protocol::par_map`
        // (worker threads behind the `parallel` feature, serial otherwise —
        // identical sketches either way).
        let alice_sketches: Vec<Sketch> =
            protocol::par_map(&alice_groups, |grp| codec.sketch_slice(grp));
        let bob_sketches: Vec<Sketch> =
            protocol::par_map(&bob_groups, |grp| codec.sketch_slice(grp));
        let encode = encode_start.elapsed();

        let decode_start = Instant::now();
        let mut recovered: HashSet<u64> = HashSet::new();
        let mut claimed_success = true;
        let mut rounds = 1u32;

        // Work list of (alice elements, bob elements, alice sketch, bob sketch, depth).
        struct Item {
            a: Vec<u64>,
            b: Vec<u64>,
            sa: Sketch,
            sb: Sketch,
            depth: u32,
        }
        let mut work: Vec<Item> = alice_groups
            .into_iter()
            .zip(bob_groups)
            .zip(alice_sketches.into_iter().zip(bob_sketches))
            .map(|((a, b), (sa, sb))| Item {
                a,
                b,
                sa,
                sb,
                depth: 0,
            })
            .collect();

        for item in &work {
            transcript.send_bits(
                Direction::AliceToBob,
                "pinsketch-wp",
                item.sa.wire_bits(cfg.universe_bits),
            );
        }

        // Decode wave by wave: every pending group pair's combine + BCH
        // decode is independent, so each wave fans out through
        // `protocol::par_map` (worker threads behind the `parallel` feature,
        // serial otherwise — identical decodes either way); splits are then
        // applied serially and feed the next wave.
        while !work.is_empty() {
            let decoded = protocol::par_map(&work, |item| {
                let mut diff = item.sb.clone();
                diff.combine(&item.sa);
                codec.decode(&diff)
            });
            let wave = std::mem::take(&mut work);
            for (item, outcome) in wave.into_iter().zip(decoded) {
                match outcome {
                    Ok(elements) => {
                        transcript.send_bits(
                            Direction::BobToAlice,
                            "difference",
                            elements.len() as u64 * cfg.universe_bits as u64,
                        );
                        for e in elements {
                            if !recovered.insert(e) {
                                recovered.remove(&e);
                            }
                        }
                    }
                    Err(_) => {
                        // Split three ways, like PBS (§3.2); this costs another
                        // round of sketches for the sub-groups.
                        if item.depth >= self.max_rounds {
                            claimed_success = false;
                            continue;
                        }
                        rounds = rounds.max(item.depth + 2);
                        transcript.send_bits(Direction::BobToAlice, "decode-failed", 8);
                        let split_hasher = PartitionHasher::new(
                            3,
                            derive_seed(seed, 0x3_5711 + item.depth as u64),
                        );
                        let mut parts_a: [Vec<u64>; 3] = Default::default();
                        let mut parts_b: [Vec<u64>; 3] = Default::default();
                        for &e in &item.a {
                            parts_a[split_hasher.bin(e) as usize].push(e);
                        }
                        for &e in &item.b {
                            parts_b[split_hasher.bin(e) as usize].push(e);
                        }
                        for k in 0..3 {
                            let sa = codec.sketch_slice(&parts_a[k]);
                            let sb = codec.sketch_slice(&parts_b[k]);
                            transcript.send_bits(
                                Direction::AliceToBob,
                                "pinsketch-wp",
                                sa.wire_bits(cfg.universe_bits),
                            );
                            work.push(Item {
                                a: std::mem::take(&mut parts_a[k]),
                                b: std::mem::take(&mut parts_b[k]),
                                sa,
                                sb,
                                depth: item.depth + 1,
                            });
                        }
                    }
                }
            }
        }
        let decode = decode_start.elapsed();

        ReconcileOutcome {
            recovered: recovered.into_iter().collect(),
            claimed_success,
            comm: transcript.stats(),
            timing: TimingStats { encode, decode },
            rounds,
        }
    }
}

impl Reconciler for PinSketchWp {
    fn name(&self) -> &'static str {
        "PinSketch/WP"
    }

    fn reconcile(&self, a: &[u64], b: &[u64], seed: u64) -> ReconcileOutcome {
        let cfg = self.config;
        let est_seed = derive_seed(seed, 0xE57);
        let mut ea = TowEstimator::new(cfg.estimator_sketches, est_seed);
        let mut eb = TowEstimator::new(cfg.estimator_sketches, est_seed);
        ea.insert_slice(a);
        eb.insert_slice(b);
        let d = ((ea.estimate(&eb) * cfg.inflation).ceil() as usize).max(1);
        self.reconcile_with_known_d(a, b, d, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::symmetric_difference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pair(n: usize, d: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = HashSet::new();
        while set.len() < n {
            set.insert((rng.random::<u64>() & 0xFFFF_FFFF).max(1));
        }
        // Sort before slicing: `HashSet` iteration order is per-process
        // random, and letting it pick *which* elements form the difference
        // makes multi-seed statistical tests flake rarely.
        let mut a: Vec<u64> = set.into_iter().collect();
        a.sort_unstable();
        let b = a[..n - d].to_vec();
        (a, b)
    }

    #[test]
    fn plain_pinsketch_recovers_exact_difference() {
        let (a, b) = random_pair(2_000, 12, 1);
        let out = PinSketch::default().reconcile_with_capacity(&a, &b, 12, 0);
        assert!(out.claimed_success);
        assert!(out.matches(&symmetric_difference(&a, &b)));
        // Communication: t·log|U| bits for the sketch = 12 × 32 = 48 bytes,
        // plus the echoed difference.
        assert_eq!(out.comm.bytes_alice_to_bob, 48);
    }

    #[test]
    fn plain_pinsketch_with_estimator() {
        let (a, b) = random_pair(3_000, 40, 2);
        let out = Reconciler::reconcile(&PinSketch::default(), &a, &b, 7);
        assert!(out.claimed_success);
        assert!(out.matches(&symmetric_difference(&a, &b)));
    }

    #[test]
    fn under_capacity_sketch_reports_failure() {
        let (a, b) = random_pair(1_000, 30, 3);
        let out = PinSketch::default().reconcile_with_capacity(&a, &b, 10, 0);
        assert!(!out.claimed_success);
    }

    #[test]
    fn partitioned_variant_recovers_difference() {
        let (a, b) = random_pair(4_000, 150, 4);
        let out = PinSketchWp::default().reconcile_with_known_d(&a, &b, 150, 11);
        assert!(out.claimed_success);
        assert!(out.matches(&symmetric_difference(&a, &b)));
    }

    #[test]
    fn partitioned_variant_handles_underestimated_d() {
        // d under-estimated by 3x: groups overflow, splits kick in, the
        // result must still be exact.
        let (a, b) = random_pair(3_000, 90, 5);
        let out = PinSketchWp::default().reconcile_with_known_d(&a, &b, 30, 13);
        assert!(out.claimed_success);
        assert!(out.matches(&symmetric_difference(&a, &b)));
    }

    #[test]
    fn wp_communication_exceeds_plain_pbs_style_accounting() {
        // §8.3: PinSketch/WP pays (t−δ)·log|U| of safety margin per group,
        // so its sketch bytes must exceed d·log|U| substantially.
        let d = 100usize;
        let (a, b) = random_pair(5_000, d, 6);
        let out = PinSketchWp::default().reconcile_with_known_d(&a, &b, d, 17);
        let min_bytes = protocol::theoretical_minimum_bytes(d, 32);
        assert!(out.comm.total_bytes() as f64 > 1.5 * min_bytes);
    }

    #[test]
    fn identical_sets_are_cheap_and_successful() {
        let (a, _) = random_pair(1_000, 0, 7);
        let out = PinSketch::default().reconcile_with_capacity(&a, &a, 5, 0);
        assert!(out.claimed_success);
        assert!(out.recovered.is_empty());
    }
}
