//! Property-based tests for the BCH syndrome-sketch codec.

use bch::{BchCodec, Sketch};
use proptest::collection::hash_set;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any difference set of size <= t decodes exactly, for both table-backed
    /// small fields and carry-less large fields.
    #[test]
    fn roundtrip_small_field(diff in hash_set(1u64..=255, 0..=12)) {
        let codec = BchCodec::new(8, 12);
        let sketch = codec.sketch_set(diff.iter().copied());
        let mut out = codec.decode(&sketch).unwrap();
        out.sort_unstable();
        let mut expect: Vec<u64> = diff.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    /// Sketches of two sets combine into the sketch of their symmetric
    /// difference (the linearity PBS and PinSketch both rely on).
    #[test]
    fn combination_equals_difference_sketch(
        a in hash_set(1u64..=2047, 0..=30),
        b in hash_set(1u64..=2047, 0..=30),
    ) {
        let codec = BchCodec::new(11, 30);
        let sa = codec.sketch_set(a.iter().copied());
        let sb = codec.sketch_set(b.iter().copied());
        let mut combined = sa;
        combined.combine(&sb);
        let direct = codec.sketch_set(a.symmetric_difference(&b).copied());
        prop_assert_eq!(combined, direct);
    }

    /// Over-capacity differences are reported as errors, never as a wrong
    /// but "successful" decode.
    #[test]
    fn over_capacity_never_decodes_silently(extra in 1usize..20, seed in any::<u64>()) {
        let t = 6usize;
        let codec = BchCodec::new(11, t);
        // Build t + extra distinct elements deterministically from the seed.
        let mut elements = std::collections::HashSet::new();
        let mut x = seed;
        while elements.len() < t + extra {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let e = (x % 2047) + 1;
            elements.insert(e);
        }
        let sketch = codec.sketch_set(elements.iter().copied());
        match codec.decode(&sketch) {
            // Decoding may fail (expected)...
            Err(_) => {}
            // ...or succeed only if it returns exactly the sketched set,
            // which is impossible here because |set| > t; catching that
            // would indicate the verification step is broken.
            Ok(out) => prop_assert!(out.len() <= t, "decoder claimed {} elements", out.len()),
        }
    }

    /// Serialization round-trips for every field width.
    #[test]
    fn serialization_roundtrip(m in 3u32..=13, t in 1usize..=20, fill in any::<u64>()) {
        let codec = BchCodec::new(m, t);
        let order = 1u64 << m;
        let mut sketch = codec.empty_sketch();
        let mut x = fill;
        for _ in 0..t.min(5) {
            x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let e = (x % (order - 1)) + 1;
            sketch.add(e, codec.field());
        }
        let bytes = sketch.to_bytes(m);
        let back = Sketch::from_bytes(&bytes, m).unwrap();
        prop_assert_eq!(back, sketch);
    }
}

/// Deterministic regression: decoding exactly at capacity for every field
/// degree used by the PBS optimizer (n = 63 .. 2047) and PinSketch (m = 32).
#[test]
fn capacity_roundtrip_across_field_sizes() {
    for m in [6u32, 7, 8, 9, 10, 11, 32] {
        let t = 13;
        let codec = BchCodec::new(m, t);
        let order = 1u64 << m;
        let diff: Vec<u64> = (1..=t as u64)
            .map(|i| (i * 97 % (order - 1)) + 1)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        let sketch = codec.sketch_set(diff.iter().copied());
        let mut out = codec.decode(&sketch).unwrap();
        out.sort_unstable();
        let mut expect = diff.clone();
        expect.sort_unstable();
        assert_eq!(out, expect, "round trip failed for m = {m}");
    }
}
