//! BCH syndrome sketches for set reconciliation.
//!
//! Both PBS (the paper's contribution) and PinSketch (its strongest
//! ECC-based baseline) boil down to the same primitive: a *syndrome sketch*
//! of a set of nonzero elements of GF(2^m). The sketch of a set
//! `S ⊆ GF(2^m)\{0}` is the vector of odd power sums
//!
//! ```text
//!   sketch(S) = ( Σ_{x∈S} x,  Σ_{x∈S} x^3,  …,  Σ_{x∈S} x^(2t−1) )
//! ```
//!
//! which is `t` field elements, i.e. `t·m` bits — exactly the BCH codeword
//! ξ_A of §2.5 ("to correct up to t bit errors, ξ_A only needs to be
//! t⌈log2(n+1)⌉ bits long"). Because addition is XOR, the sketch is linear:
//! `sketch(A) ⊕ sketch(B) = sketch(A△B)`, so Bob can combine Alice's sketch
//! with his own and decode the *difference* directly.
//!
//! Decoding uses the classical BCH pipeline:
//!
//! 1. expand the odd syndromes to all `2t` syndromes via the characteristic-2
//!    identity `S_{2k} = S_k²`,
//! 2. Berlekamp–Massey to find the error-locator polynomial (O(t²) field
//!    operations — this is the O(d²)/O(δ²) decoding cost the paper analyses;
//!    the Toeplitz/Levinson solver it cites has the same quadratic cost),
//! 3. find the locator's roots: a Chien search (exhaustive evaluation) for
//!    the small fields PBS uses (n ≤ 2047), or the Berlekamp trace algorithm
//!    for the large fields PinSketch needs (m = 32 and beyond),
//! 4. validate the result by re-computing the syndromes of the recovered
//!    difference; any mismatch is reported as a [`DecodeError`], which is the
//!    "BCH decoding failure" exception of §3.2.
//!
//! # Example
//!
//! ```
//! use bch::BchCodec;
//!
//! let codec = BchCodec::new(8, 5); // n = 255 bins, correct up to 5 differences
//! let mut alice = codec.empty_sketch();
//! let mut bob = codec.empty_sketch();
//! for p in [1u64, 17, 200, 93] {
//!     alice.add(p, codec.field());
//! }
//! for p in [17u64, 200] {
//!     bob.add(p, codec.field());
//! }
//! let mut diff = alice.clone();
//! diff.combine(&bob);
//! let mut positions = codec.decode(&diff).unwrap();
//! positions.sort_unstable();
//! assert_eq!(positions, vec![1, 93]);
//! ```

#![warn(missing_docs)]

mod berlekamp;
mod roots;

pub use berlekamp::berlekamp_massey;
pub use roots::{find_roots, RootFindError};

use gf::Field;
use std::sync::Arc;

/// Reasons a syndrome sketch can fail to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The number of differences exceeds the sketch capacity `t`, or the
    /// syndrome sequence is otherwise inconsistent with any difference set of
    /// size ≤ t (the §3.2 "BCH decoding failure" exception).
    TooManyDifferences,
    /// The locator polynomial did not split into distinct roots in the field;
    /// also indicates an over-capacity or corrupted sketch.
    LocatorNotSplitting,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooManyDifferences => {
                write!(f, "sketch does not decode: difference exceeds capacity t")
            }
            DecodeError::LocatorNotSplitting => {
                write!(
                    f,
                    "sketch does not decode: locator polynomial has no full root set"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A syndrome sketch: `t` odd power sums over GF(2^m).
///
/// The sketch is a plain value; all arithmetic goes through the owning
/// [`BchCodec`] (or an explicit [`Field`]) so sketches can be freely
/// serialized, stored, and XOR-combined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    syndromes: Vec<u64>,
}

impl Sketch {
    /// Create an all-zero sketch with capacity `t`.
    pub fn zero(t: usize) -> Self {
        Sketch {
            syndromes: vec![0u64; t],
        }
    }

    /// Sketch capacity `t` (maximum number of decodable differences).
    pub fn capacity(&self) -> usize {
        self.syndromes.len()
    }

    /// Raw odd syndromes `S_1, S_3, …, S_{2t−1}`.
    pub fn syndromes(&self) -> &[u64] {
        &self.syndromes
    }

    /// `true` if every syndrome is zero (an empty difference — note a
    /// *nonempty* difference can also produce an all-zero sketch only if it
    /// exceeds the capacity, which the checksum layer above PBS catches).
    pub fn is_zero(&self) -> bool {
        self.syndromes.iter().all(|&s| s == 0)
    }

    /// Toggle `element` in the sketched set. Adding the same element twice
    /// cancels out, which is exactly the behaviour set reconciliation needs.
    ///
    /// `element` must be a nonzero field element (the all-zero element is
    /// excluded from the universe, §2.1).
    pub fn add(&mut self, element: u64, field: &Field) {
        debug_assert!(element != 0, "cannot sketch the zero element");
        debug_assert!(field.contains(element));
        let sq = field.square(element);
        let mut power = element; // element^(2i+1), starting at i = 0
        for s in &mut self.syndromes {
            *s ^= power;
            power = field.mul(power, sq);
        }
    }

    /// Toggle a whole slice of elements in the sketched set.
    ///
    /// This is the batched syndrome kernel: four elements advance through
    /// their odd-power ladders together (`x, x^3, x^5, …` each stepping by
    /// `x^2`), so the four field multiplications per syndrome row are
    /// independent and the backend dispatch in [`Field::mul_slice`] is paid
    /// once per row instead of once per multiplication. Equivalent to
    /// calling [`Sketch::add`] per element, measurably faster for the bulk
    /// sketching PinSketch and PBS do.
    pub fn add_batch(&mut self, elements: &[u64], field: &Field) {
        let t = self.syndromes.len();
        let mut chunks = elements.chunks_exact(4);
        for chunk in &mut chunks {
            debug_assert!(chunk.iter().all(|&e| e != 0 && field.contains(e)));
            let mut powers = [chunk[0], chunk[1], chunk[2], chunk[3]];
            let mut squares = powers;
            field.square_slice(&mut squares);
            for (i, s) in self.syndromes.iter_mut().enumerate() {
                *s ^= powers[0] ^ powers[1] ^ powers[2] ^ powers[3];
                if i + 1 < t {
                    field.mul_slice(&mut powers, &squares);
                }
            }
        }
        for &e in chunks.remainder() {
            self.add(e, field);
        }
    }

    /// XOR-combine with another sketch of the same capacity: the result is
    /// the sketch of the symmetric difference of the two sketched sets.
    pub fn combine(&mut self, other: &Sketch) {
        assert_eq!(
            self.syndromes.len(),
            other.syndromes.len(),
            "cannot combine sketches with different capacities"
        );
        for (a, b) in self.syndromes.iter_mut().zip(&other.syndromes) {
            *a ^= *b;
        }
    }

    /// Serialize to bytes: each syndrome packed as ⌈m/8⌉ little-endian bytes.
    pub fn to_bytes(&self, m: u32) -> Vec<u8> {
        let width = m.div_ceil(8) as usize;
        let mut out = Vec::with_capacity(width * self.syndromes.len());
        for &s in &self.syndromes {
            out.extend_from_slice(&s.to_le_bytes()[..width]);
        }
        out
    }

    /// Deserialize from the byte format produced by [`Sketch::to_bytes`].
    ///
    /// Rejects inputs whose length is not a multiple of the syndrome width
    /// (trailing garbage) and any syndrome value with bits at or above `m`
    /// set (an out-of-field element a peer could otherwise smuggle into the
    /// decoder): the padding bits of each ⌈m/8⌉-byte word must be zero.
    pub fn from_bytes(bytes: &[u8], m: u32) -> Option<Self> {
        if m == 0 || m > 64 {
            return None;
        }
        let width = m.div_ceil(8) as usize;
        if !bytes.len().is_multiple_of(width) {
            return None;
        }
        let limit = 1u64.checked_shl(m).unwrap_or(0); // 0 means "no bound" (m == 64)
        let mut syndromes = Vec::with_capacity(bytes.len() / width);
        for chunk in bytes.chunks(width) {
            let mut buf = [0u8; 8];
            buf[..width].copy_from_slice(chunk);
            let value = u64::from_le_bytes(buf);
            if limit != 0 && value >= limit {
                return None;
            }
            syndromes.push(value);
        }
        Some(Sketch { syndromes })
    }

    /// Exact wire size of the sketch in bits: `t · m`.
    pub fn wire_bits(&self, m: u32) -> u64 {
        self.syndromes.len() as u64 * m as u64
    }
}

/// Encoder/decoder for syndrome sketches over GF(2^m) with capacity `t`.
#[derive(Debug, Clone)]
pub struct BchCodec {
    field: Arc<Field>,
    t: usize,
}

impl BchCodec {
    /// Create a codec over GF(2^m) with capacity `t`.
    ///
    /// For PBS, `m = log2(n+1)` where `n = 2^m − 1` is the parity-bitmap
    /// length; for PinSketch, `m = log|U|`.
    pub fn new(m: u32, t: usize) -> Self {
        assert!(t > 0, "sketch capacity t must be positive");
        BchCodec {
            field: Arc::new(Field::new(m)),
            t,
        }
    }

    /// Create a codec sharing an existing field (avoids rebuilding log tables).
    pub fn with_field(field: Arc<Field>, t: usize) -> Self {
        assert!(t > 0, "sketch capacity t must be positive");
        BchCodec { field, t }
    }

    /// The underlying field.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// A clone of the shared field handle.
    pub fn field_arc(&self) -> Arc<Field> {
        Arc::clone(&self.field)
    }

    /// Extension degree `m`.
    pub fn m(&self) -> u32 {
        self.field.m()
    }

    /// Capacity `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Wire size of one sketch in bits (`t · m`).
    pub fn sketch_bits(&self) -> u64 {
        self.t as u64 * self.field.m() as u64
    }

    /// An all-zero sketch.
    pub fn empty_sketch(&self) -> Sketch {
        Sketch::zero(self.t)
    }

    /// Sketch a whole set of nonzero field elements through the batched
    /// kernel ([`Sketch::add_batch`]).
    pub fn sketch_set(&self, elements: impl IntoIterator<Item = u64>) -> Sketch {
        let mut s = self.empty_sketch();
        let mut buf = [0u64; 64];
        let mut n = 0;
        for e in elements {
            buf[n] = e;
            n += 1;
            if n == buf.len() {
                s.add_batch(&buf, &self.field);
                n = 0;
            }
        }
        s.add_batch(&buf[..n], &self.field);
        s
    }

    /// Sketch a slice of nonzero field elements (no iterator buffering).
    pub fn sketch_slice(&self, elements: &[u64]) -> Sketch {
        let mut s = self.empty_sketch();
        s.add_batch(elements, &self.field);
        s
    }

    /// Decode a (difference) sketch into the set of sketched elements.
    ///
    /// Returns the elements in unspecified order, or a [`DecodeError`] if the
    /// difference does not fit in the capacity (or the sketch is otherwise
    /// undecodable). A successful return is *verified*: the syndromes of the
    /// returned set are recomputed and compared against the input sketch.
    pub fn decode(&self, sketch: &Sketch) -> Result<Vec<u64>, DecodeError> {
        assert_eq!(sketch.capacity(), self.t, "sketch capacity mismatch");
        let f = &*self.field;
        if sketch.is_zero() {
            return Ok(Vec::new());
        }

        // Expand to the full syndrome sequence S_1 .. S_{2t}.
        let t = self.t;
        let mut s = vec![0u64; 2 * t + 1]; // 1-based
        for (i, &odd) in sketch.syndromes.iter().enumerate() {
            s[2 * i + 1] = odd;
        }
        for k in 1..=t {
            s[2 * k] = f.square(s[k]);
        }

        // Berlekamp–Massey on S_1..S_2t.
        let locator = berlekamp_massey(&s[1..], f);
        let degree = match locator.degree() {
            Some(d) if d > 0 => d,
            _ => return Err(DecodeError::TooManyDifferences),
        };
        if degree > t {
            return Err(DecodeError::TooManyDifferences);
        }

        // Roots of the locator are the inverses of the difference elements.
        let roots = find_roots(&locator, f).map_err(|_| DecodeError::LocatorNotSplitting)?;
        if roots.len() != degree || roots.contains(&0) {
            return Err(DecodeError::LocatorNotSplitting);
        }
        let elements: Vec<u64> = roots.iter().map(|&r| f.inv(r)).collect();

        // Verify: the recovered set must reproduce the sketch exactly.
        let check = self.sketch_set(elements.iter().copied());
        if check != *sketch {
            return Err(DecodeError::TooManyDifferences);
        }
        Ok(elements)
    }

    /// Decode the difference between two sketches directly.
    pub fn decode_difference(&self, a: &Sketch, b: &Sketch) -> Result<Vec<u64>, DecodeError> {
        let mut d = a.clone();
        d.combine(b);
        self.decode(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_difference_decodes_to_empty() {
        let codec = BchCodec::new(8, 4);
        let a = codec.sketch_set([5u64, 9, 200]);
        let b = codec.sketch_set([200u64, 9, 5]);
        assert_eq!(codec.decode_difference(&a, &b).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn single_difference() {
        let codec = BchCodec::new(8, 3);
        let a = codec.sketch_set([1u64, 2, 3]);
        let b = codec.sketch_set([1u64, 2]);
        assert_eq!(codec.decode_difference(&a, &b).unwrap(), vec![3]);
    }

    #[test]
    fn difference_up_to_capacity_decodes_exactly() {
        let codec = BchCodec::new(11, 8);
        let alice: Vec<u64> = (1..=300).collect();
        let bob: Vec<u64> = (9..=300).collect(); // 8 differences: 1..=8
        let sa = codec.sketch_set(alice.iter().copied());
        let sb = codec.sketch_set(bob.iter().copied());
        let mut d = codec.decode_difference(&sa, &sb).unwrap();
        d.sort_unstable();
        assert_eq!(d, (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn over_capacity_is_detected() {
        let codec = BchCodec::new(10, 4);
        // 6 differences but capacity 4.
        let sa = codec.sketch_set([1u64, 2, 3, 4, 5, 6]);
        let sb = codec.empty_sketch();
        assert!(codec.decode_difference(&sa, &sb).is_err());
    }

    #[test]
    fn large_field_decoding_gf32() {
        let codec = BchCodec::new(32, 10);
        let diff: Vec<u64> = vec![
            0xDEADBEEF,
            0x12345678,
            0xCAFEBABE,
            0x0BADF00D,
            1,
            0xFFFF_FFFE,
            0x8000_0001,
        ];
        let s = codec.sketch_set(diff.iter().copied());
        let mut out = codec.decode(&s).unwrap();
        out.sort_unstable();
        let mut expect = diff.clone();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn combine_is_symmetric_difference() {
        let codec = BchCodec::new(9, 6);
        let a = codec.sketch_set([10u64, 20, 30, 40]);
        let b = codec.sketch_set([30u64, 40, 50]);
        let mut d = a.clone();
        d.combine(&b);
        let mut out = codec.decode(&d).unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![10, 20, 50]);
    }

    #[test]
    fn serialization_round_trip() {
        let codec = BchCodec::new(11, 13);
        let s = codec.sketch_set([100u64, 2000, 5]);
        let bytes = s.to_bytes(11);
        assert_eq!(bytes.len(), 13 * 2);
        let back = Sketch::from_bytes(&bytes, 11).unwrap();
        assert_eq!(back, s);
        assert_eq!(s.wire_bits(11), 13 * 11);
    }

    #[test]
    fn from_bytes_rejects_bad_length() {
        assert!(Sketch::from_bytes(&[1, 2, 3], 11).is_none());
    }

    #[test]
    fn from_bytes_rejects_out_of_field_syndromes() {
        // m = 11: syndromes are 2 bytes wide but only values < 2048 are
        // field elements. 0x0FFF = 4095 is out of field.
        assert!(Sketch::from_bytes(&[0xFF, 0x0F], 11).is_none());
        // The largest in-field value round-trips.
        assert_eq!(
            Sketch::from_bytes(&[0xFF, 0x07], 11).unwrap().syndromes(),
            &[2047]
        );
        // m = 16 uses the full 2-byte range: everything is in field.
        assert!(Sketch::from_bytes(&[0xFF, 0xFF], 16).is_some());
        // Degenerate widths are rejected outright.
        assert!(Sketch::from_bytes(&[1], 0).is_none());
        assert!(Sketch::from_bytes(&[1; 9], 65).is_none());
    }

    #[test]
    fn add_batch_matches_sequential_adds() {
        for m in [8u32, 11, 32] {
            let codec = BchCodec::new(m, 9);
            let order = codec.field().order();
            for n in [0usize, 1, 3, 4, 5, 64, 130] {
                let elements: Vec<u64> = (0..n as u64)
                    .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) % (order - 1)) + 1)
                    .collect();
                let mut batched = codec.empty_sketch();
                batched.add_batch(&elements, codec.field());
                let mut sequential = codec.empty_sketch();
                for &e in &elements {
                    sequential.add(e, codec.field());
                }
                assert_eq!(batched, sequential, "batch mismatch m={m} n={n}");
                assert_eq!(codec.sketch_slice(&elements), sequential);
                assert_eq!(codec.sketch_set(elements.iter().copied()), sequential);
            }
        }
    }

    #[test]
    fn add_twice_cancels() {
        let codec = BchCodec::new(8, 5);
        let mut s = codec.empty_sketch();
        s.add(42, codec.field());
        s.add(42, codec.field());
        assert!(s.is_zero());
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn combine_capacity_mismatch_panics() {
        let mut a = Sketch::zero(3);
        let b = Sketch::zero(4);
        a.combine(&b);
    }
}
