//! Root finding for error-locator polynomials over GF(2^m).
//!
//! Two strategies, chosen by field size:
//!
//! * **Chien search** (exhaustive evaluation at every nonzero field element)
//!   for small fields. PBS works over GF(2^m) with `n = 2^m − 1 ≤ 2047`
//!   (§5.1), so a full scan costs at most a few thousand polynomial
//!   evaluations per group — this is the O(1)-per-group decoding cost the
//!   paper relies on.
//! * **Berlekamp trace algorithm** for large fields (PinSketch works over
//!   GF(2^32)). The polynomial is recursively split with
//!   `gcd(f, Tr(βx) mod f)` for successively chosen β; every fully-splitting
//!   square-free polynomial over GF(2^m) is separated into linear factors in
//!   an expected `O(m · deg² · log deg)` field operations.

use gf::{Field, Poly};

/// Fields with at most this many elements use the exhaustive Chien search.
const CHIEN_LIMIT: u64 = 1 << 16;

/// Error returned when a polynomial does not split into distinct roots over
/// the field — for a locator polynomial this signals an undecodable sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootFindError;

impl std::fmt::Display for RootFindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "polynomial does not split into distinct roots over GF(2^m)")
    }
}

impl std::error::Error for RootFindError {}

/// Find all roots of `poly` in GF(2^m), requiring that `poly` splits into
/// `deg(poly)` *distinct* roots (which is exactly the property a valid
/// error-locator polynomial has). Returns an error otherwise.
pub fn find_roots(poly: &Poly, field: &Field) -> Result<Vec<u64>, RootFindError> {
    let degree = match poly.degree() {
        None => return Err(RootFindError), // zero polynomial
        Some(0) => return Ok(Vec::new()),
        Some(d) => d,
    };
    // A locator polynomial never has 0 as a root (its constant term is 1),
    // but be defensive: a zero constant term means x | poly, i.e. root 0,
    // which is outside the set of valid positions.
    if poly.coeff(0) == 0 {
        return Err(RootFindError);
    }

    if field.order() <= CHIEN_LIMIT || degree as u64 * 4 >= field.order() {
        let roots = chien_search(poly, field);
        if roots.len() == degree {
            Ok(roots)
        } else {
            Err(RootFindError)
        }
    } else {
        trace_split(poly, field)
    }
}

/// Exhaustive root search: evaluate at every nonzero field element.
fn chien_search(poly: &Poly, field: &Field) -> Vec<u64> {
    let mut roots = Vec::new();
    for x in field.nonzero_elements() {
        if poly.eval(x, field) == 0 {
            roots.push(x);
            if roots.len() == poly.degree_or_zero() {
                break;
            }
        }
    }
    roots
}

/// Berlekamp trace algorithm for large fields.
fn trace_split(poly: &Poly, field: &Field) -> Result<Vec<u64>, RootFindError> {
    let monic = poly.clone().into_monic(field);
    let degree = monic.degree().unwrap();

    // Check that the polynomial splits completely with distinct roots:
    // poly | x^(2^m) − x  ⇔  x^(2^m) ≡ x (mod poly).
    let x = Poly::x();
    let mut frob = x.rem(&monic, field);
    for _ in 0..field.m() {
        frob = frob.square_mod(&monic, field);
    }
    if frob != x.rem(&monic, field) {
        return Err(RootFindError);
    }

    let mut roots = Vec::with_capacity(degree);
    // Deterministic pseudo-random β sequence (splitmix64) so decoding is
    // reproducible; the specific constants only affect how quickly the
    // recursion splits, never correctness.
    let mut beta_state: u64 = 0x243F_6A88_85A3_08D3;
    let mut next_beta = move || {
        beta_state = beta_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = beta_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut stack = vec![monic];
    while let Some(current) = stack.pop() {
        let deg = current.degree().unwrap_or(0);
        match deg {
            0 => {}
            1 => {
                // monic linear factor x + c: root is c.
                roots.push(current.coeff(0));
            }
            _ => {
                // Try trace-based splits until the factor breaks apart.
                let mut split = None;
                for _ in 0..64 {
                    let beta = {
                        let mut b = next_beta() % field.order();
                        if b == 0 {
                            b = 1;
                        }
                        b
                    };
                    // T(x) = Σ_{i=0}^{m-1} (βx)^(2^i) mod current
                    let bx = Poly::from_coeffs(vec![0, beta]).rem(&current, field);
                    let mut term = bx.clone();
                    let mut acc = bx;
                    for _ in 1..field.m() {
                        term = term.square_mod(&current, field);
                        acc = acc.add(&term, field);
                    }
                    if acc.is_zero() {
                        continue;
                    }
                    let g = current.gcd(&acc, field);
                    let gd = g.degree_or_zero();
                    if gd > 0 && gd < deg {
                        let (q, r) = current.div_rem(&g, field);
                        debug_assert!(r.is_zero(), "gcd must divide the polynomial");
                        split = Some((g, q));
                        break;
                    }
                }
                match split {
                    Some((g, q)) => {
                        stack.push(g);
                        stack.push(q);
                    }
                    // Statistically unreachable for a fully-splitting
                    // polynomial; report failure rather than looping forever.
                    None => return Err(RootFindError),
                }
            }
        }
    }

    if roots.len() == degree {
        Ok(roots)
    } else {
        Err(RootFindError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly_with_roots(roots: &[u64], f: &Field) -> Poly {
        let mut p = Poly::one();
        for &r in roots {
            p = p.mul(&Poly::from_coeffs(vec![r, 1]), f);
        }
        p
    }

    #[test]
    fn chien_finds_all_roots_in_small_field() {
        let f = Field::new(8);
        let roots = [1u64, 42, 200, 255];
        let p = poly_with_roots(&roots, &f);
        let mut found = find_roots(&p, &f).unwrap();
        found.sort_unstable();
        let mut expect = roots.to_vec();
        expect.sort_unstable();
        assert_eq!(found, expect);
    }

    #[test]
    fn trace_algorithm_finds_roots_in_gf32() {
        let f = Field::new(32);
        let roots = [0xDEADBEEFu64, 0x1234_5678, 3, 0xFFFF_FFFE, 0x0BAD_F00D, 0x8000_0000];
        let p = poly_with_roots(&roots, &f);
        let mut found = find_roots(&p, &f).unwrap();
        found.sort_unstable();
        let mut expect = roots.to_vec();
        expect.sort_unstable();
        assert_eq!(found, expect);
    }

    #[test]
    fn trace_algorithm_handles_many_roots() {
        let f = Field::new(24);
        let roots: Vec<u64> = (1..=40u64).map(|i| i * 0x1_2345 % f.order()).collect();
        let p = poly_with_roots(&roots, &f);
        let mut found = find_roots(&p, &f).unwrap();
        found.sort_unstable();
        let mut expect = roots.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(found, expect);
    }

    /// An element of trace 1: the quadratic x² + x + c is then irreducible.
    /// Scanning the basis monomials 1, x, x², … always terminates within m
    /// steps because the trace map is nonzero.
    fn trace_one_element(f: &Field) -> u64 {
        (0..f.m())
            .map(|i| 1u64 << i)
            .find(|&c| f.trace(c) == 1)
            .expect("the trace map is not identically zero")
    }

    #[test]
    fn non_splitting_polynomial_is_rejected_large_field() {
        let f = Field::new(32);
        let c = trace_one_element(&f);
        let p = Poly::from_coeffs(vec![c, 1, 1]); // irreducible quadratic
        assert!(find_roots(&p, &f).is_err());
    }

    #[test]
    fn non_splitting_polynomial_is_rejected_small_field() {
        let f = Field::new(8);
        let c = trace_one_element(&f);
        let p = Poly::from_coeffs(vec![c, 1, 1]); // irreducible quadratic
        assert!(find_roots(&p, &f).is_err());
    }

    #[test]
    fn repeated_roots_are_rejected() {
        let f = Field::new(8);
        let p = poly_with_roots(&[7, 7, 9], &f);
        assert!(find_roots(&p, &f).is_err());
    }

    #[test]
    fn repeated_roots_are_rejected_large_field() {
        let f = Field::new(32);
        let p = poly_with_roots(&[0xABCDu64, 0xABCD, 99], &f);
        assert!(find_roots(&p, &f).is_err());
    }

    #[test]
    fn constant_polynomial_has_no_roots() {
        let f = Field::new(8);
        assert_eq!(find_roots(&Poly::constant(5), &f).unwrap(), Vec::<u64>::new());
        assert!(find_roots(&Poly::zero(), &f).is_err());
    }

    #[test]
    fn zero_constant_term_rejected() {
        let f = Field::new(8);
        // x * (x + 3): has root 0, which is not a valid locator root.
        let p = Poly::from_coeffs(vec![0, 3, 1]);
        assert!(find_roots(&p, &f).is_err());
    }
}
