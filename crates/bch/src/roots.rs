//! Root finding for error-locator polynomials over GF(2^m).
//!
//! Two strategies, chosen by field size:
//!
//! * **Stepping Chien search** for small fields. PBS works over GF(2^m) with
//!   `n = 2^m − 1 ≤ 2047` (§5.1), so every candidate is scanned — but not by
//!   re-running a full Horner evaluation per candidate. The classical
//!   stepping formulation keeps one running term per locator coefficient and
//!   advances each by a fixed per-coefficient multiplier when moving to the
//!   next candidate; over the table-backed fields this collapses to one
//!   exponent add and one antilog lookup per coefficient
//!   ([`gf::Field::chien_search`]).
//! * **Berlekamp trace algorithm** for large fields (PinSketch works over
//!   GF(2^32)). The polynomial is recursively split with
//!   `gcd(f, Tr(βx) mod f)` for successively chosen β. The Frobenius ladder
//!   `x^(2^i) mod f` is computed **once per factor** and reused for the
//!   full-splitting check and for every β trial (each trial is then only a
//!   scalar Frobenius ladder on β plus scaled polynomial adds), instead of
//!   re-running `m` modular squarings per trial.

use gf::{Field, Poly};

/// Fields with at most this many elements use the exhaustive Chien search.
const CHIEN_LIMIT: u64 = 1 << 16;

/// Error returned when a polynomial does not split into distinct roots over
/// the field — for a locator polynomial this signals an undecodable sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootFindError;

impl std::fmt::Display for RootFindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "polynomial does not split into distinct roots over GF(2^m)"
        )
    }
}

impl std::error::Error for RootFindError {}

/// Find all roots of `poly` in GF(2^m), requiring that `poly` splits into
/// `deg(poly)` *distinct* roots (which is exactly the property a valid
/// error-locator polynomial has). Returns an error otherwise.
pub fn find_roots(poly: &Poly, field: &Field) -> Result<Vec<u64>, RootFindError> {
    let degree = match poly.degree() {
        None => return Err(RootFindError), // zero polynomial
        Some(0) => return Ok(Vec::new()),
        Some(d) => d,
    };
    // A locator polynomial never has 0 as a root (its constant term is 1),
    // but be defensive: a zero constant term means x | poly, i.e. root 0,
    // which is outside the set of valid positions.
    if poly.coeff(0) == 0 {
        return Err(RootFindError);
    }

    if field.order() <= CHIEN_LIMIT || degree as u64 * 4 >= field.order() {
        let roots = chien_search(poly, field);
        if roots.len() == degree {
            Ok(roots)
        } else {
            Err(RootFindError)
        }
    } else {
        trace_split(poly, field)
    }
}

/// Full scan over the nonzero field elements: the stepping kernel when the
/// field is table-backed, a batched-Horner sweep otherwise (only reachable
/// for degenerate degree ≈ order inputs on large fields).
fn chien_search(poly: &Poly, field: &Field) -> Vec<u64> {
    let want = poly.degree_or_zero();
    if let Some(roots) = field.chien_search(poly.coeffs(), want) {
        return roots;
    }
    let mut roots = Vec::new();
    let mut batch = Vec::with_capacity(1024);
    let mut xs = field.nonzero_elements();
    loop {
        batch.clear();
        batch.extend(xs.by_ref().take(1024));
        if batch.is_empty() {
            break;
        }
        for (i, v) in poly.eval_batch(&batch, field).into_iter().enumerate() {
            if v == 0 {
                roots.push(batch[i]);
                if roots.len() == want {
                    return roots;
                }
            }
        }
    }
    roots
}

/// The Frobenius ladder `x^(2^i) mod modulus` for `i = 0 .. m-1`.
fn frobenius_ladder(modulus: &Poly, field: &Field) -> Vec<Poly> {
    let mut ladder = Vec::with_capacity(field.m() as usize);
    ladder.push(Poly::x().rem(modulus, field));
    for i in 1..field.m() as usize {
        ladder.push(ladder[i - 1].square_mod(modulus, field));
    }
    ladder
}

/// `Tr(βx) mod modulus = Σ_{i=0}^{m-1} β^(2^i) · (x^(2^i) mod modulus)`,
/// assembled from a precomputed ladder: one scalar Frobenius orbit on β and
/// `m` scaled polynomial additions — no modular squarings per β trial.
fn trace_poly_from_ladder(ladder: &[Poly], beta: u64, field: &Field) -> Poly {
    let mut acc = Poly::zero();
    let mut beta_pow = beta;
    for step in ladder {
        acc = acc.add(&step.scale(beta_pow, field), field);
        beta_pow = field.square(beta_pow);
    }
    acc
}

/// Berlekamp trace algorithm for large fields.
fn trace_split(poly: &Poly, field: &Field) -> Result<Vec<u64>, RootFindError> {
    let monic = poly.clone().into_monic(field);
    let degree = monic.degree().unwrap();

    // Check that the polynomial splits completely with distinct roots:
    // poly | x^(2^m) − x  ⇔  x^(2^m) ≡ x (mod poly). The ladder gives
    // x^(2^(m-1)); one more squaring yields x^(2^m), and the same ladder is
    // then reused for every β trial on this factor.
    let root_ladder = frobenius_ladder(&monic, field);
    let frob_m = root_ladder[root_ladder.len() - 1].square_mod(&monic, field);
    if frob_m != root_ladder[0] {
        return Err(RootFindError);
    }

    let mut roots = Vec::with_capacity(degree);
    // Deterministic pseudo-random β sequence (splitmix64) so decoding is
    // reproducible; the specific constants only affect how quickly the
    // recursion splits, never correctness.
    let mut beta_state: u64 = 0x243F_6A88_85A3_08D3;
    let mut next_beta = move || {
        beta_state = beta_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = beta_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    // Each work item carries its Frobenius ladder; children inherit the
    // parent's ladder reduced modulo the new (smaller) factor, which is far
    // cheaper than re-deriving it by repeated modular squaring.
    let mut stack = vec![(monic, root_ladder)];
    while let Some((current, ladder)) = stack.pop() {
        let deg = current.degree().unwrap_or(0);
        match deg {
            0 => {}
            1 => {
                // monic linear factor x + c: root is c.
                roots.push(current.coeff(0));
            }
            _ => {
                // Try trace-based splits until the factor breaks apart.
                let mut split = None;
                for _ in 0..64 {
                    let beta = {
                        let mut b = next_beta() % field.order();
                        if b == 0 {
                            b = 1;
                        }
                        b
                    };
                    let acc = trace_poly_from_ladder(&ladder, beta, field);
                    if acc.is_zero() {
                        continue;
                    }
                    let g = current.gcd(&acc, field);
                    let gd = g.degree_or_zero();
                    if gd > 0 && gd < deg {
                        let (q, r) = current.div_rem(&g, field);
                        debug_assert!(r.is_zero(), "gcd must divide the polynomial");
                        split = Some((g, q));
                        break;
                    }
                }
                match split {
                    Some((g, q)) => {
                        // Terminal children (degree <= 1) never consult their
                        // ladder — don't pay m reductions to build one.
                        let child_ladder = |child: &Poly| -> Vec<Poly> {
                            if child.degree_or_zero() < 2 {
                                Vec::new()
                            } else {
                                ladder.iter().map(|p| p.rem(child, field)).collect()
                            }
                        };
                        let g_ladder = child_ladder(&g);
                        let q_ladder = child_ladder(&q);
                        stack.push((g, g_ladder));
                        stack.push((q, q_ladder));
                    }
                    // Statistically unreachable for a fully-splitting
                    // polynomial; report failure rather than looping forever.
                    None => return Err(RootFindError),
                }
            }
        }
    }

    if roots.len() == degree {
        Ok(roots)
    } else {
        Err(RootFindError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly_with_roots(roots: &[u64], f: &Field) -> Poly {
        let mut p = Poly::one();
        for &r in roots {
            p = p.mul(&Poly::from_coeffs(vec![r, 1]), f);
        }
        p
    }

    #[test]
    fn chien_finds_all_roots_in_small_field() {
        let f = Field::new(8);
        let roots = [1u64, 42, 200, 255];
        let p = poly_with_roots(&roots, &f);
        let mut found = find_roots(&p, &f).unwrap();
        found.sort_unstable();
        let mut expect = roots.to_vec();
        expect.sort_unstable();
        assert_eq!(found, expect);
    }

    #[test]
    fn stepping_chien_matches_exhaustive_eval() {
        for m in [8u32, 11, 13] {
            let f = Field::new(m);
            let roots: Vec<u64> = (1..=7u64)
                .map(|i| (i * 0x51D + 3) % (f.order() - 1) + 1)
                .collect();
            let p = poly_with_roots(&roots, &f);
            let mut stepping = find_roots(&p, &f).unwrap();
            stepping.sort_unstable();
            let mut exhaustive = p.roots_exhaustive(&f);
            exhaustive.sort_unstable();
            assert_eq!(stepping, exhaustive, "stepping vs exhaustive for m={m}");
        }
    }

    #[test]
    fn trace_algorithm_finds_roots_in_gf32() {
        let f = Field::new(32);
        let roots = [
            0xDEADBEEFu64,
            0x1234_5678,
            3,
            0xFFFF_FFFE,
            0x0BAD_F00D,
            0x8000_0000,
        ];
        let p = poly_with_roots(&roots, &f);
        let mut found = find_roots(&p, &f).unwrap();
        found.sort_unstable();
        let mut expect = roots.to_vec();
        expect.sort_unstable();
        assert_eq!(found, expect);
    }

    #[test]
    fn trace_algorithm_handles_many_roots() {
        let f = Field::new(24);
        let roots: Vec<u64> = (1..=40u64).map(|i| i * 0x1_2345 % f.order()).collect();
        let p = poly_with_roots(&roots, &f);
        let mut found = find_roots(&p, &f).unwrap();
        found.sort_unstable();
        let mut expect = roots.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(found, expect);
    }

    /// An element of trace 1: the quadratic x² + x + c is then irreducible.
    /// Scanning the basis monomials 1, x, x², … always terminates within m
    /// steps because the trace map is nonzero.
    fn trace_one_element(f: &Field) -> u64 {
        (0..f.m())
            .map(|i| 1u64 << i)
            .find(|&c| f.trace(c) == 1)
            .expect("the trace map is not identically zero")
    }

    #[test]
    fn non_splitting_polynomial_is_rejected_large_field() {
        let f = Field::new(32);
        let c = trace_one_element(&f);
        let p = Poly::from_coeffs(vec![c, 1, 1]); // irreducible quadratic
        assert!(find_roots(&p, &f).is_err());
    }

    #[test]
    fn non_splitting_polynomial_is_rejected_small_field() {
        let f = Field::new(8);
        let c = trace_one_element(&f);
        let p = Poly::from_coeffs(vec![c, 1, 1]); // irreducible quadratic
        assert!(find_roots(&p, &f).is_err());
    }

    #[test]
    fn repeated_roots_are_rejected() {
        let f = Field::new(8);
        let p = poly_with_roots(&[7, 7, 9], &f);
        assert!(find_roots(&p, &f).is_err());
    }

    #[test]
    fn repeated_roots_are_rejected_large_field() {
        let f = Field::new(32);
        let p = poly_with_roots(&[0xABCDu64, 0xABCD, 99], &f);
        assert!(find_roots(&p, &f).is_err());
    }

    #[test]
    fn constant_polynomial_has_no_roots() {
        let f = Field::new(8);
        assert_eq!(
            find_roots(&Poly::constant(5), &f).unwrap(),
            Vec::<u64>::new()
        );
        assert!(find_roots(&Poly::zero(), &f).is_err());
    }

    #[test]
    fn zero_constant_term_rejected() {
        let f = Field::new(8);
        // x * (x + 3): has root 0, which is not a valid locator root.
        let p = Poly::from_coeffs(vec![0, 3, 1]);
        assert!(find_roots(&p, &f).is_err());
    }
}
