//! Berlekamp–Massey synthesis of the error-locator polynomial.

use gf::{Field, Poly};

/// Run the Berlekamp–Massey algorithm over GF(2^m).
///
/// Given the syndrome sequence `s = [S_1, S_2, …, S_{2t}]`, returns the
/// minimal connection polynomial `Λ(x) = 1 + Λ_1 x + … + Λ_L x^L` such that
///
/// ```text
///   S_j = Σ_{i=1}^{L} Λ_i · S_{j−i}      for j = L+1 … 2t
/// ```
///
/// When the syndromes are the power sums of a difference set `D` with
/// `|D| ≤ t`, the returned polynomial is the error-locator polynomial
/// `Λ(x) = Π_{X∈D} (1 − X·x)` whose roots are the inverses of the elements
/// of `D`. Complexity is `O(t²)` field multiplications, the cost the paper
/// attributes to ECC-based decoding.
pub fn berlekamp_massey(syndromes: &[u64], field: &Field) -> Poly {
    let n = syndromes.len();
    // C(x): current connection polynomial, B(x): last copy before the length change.
    let mut c = vec![0u64; n + 1];
    let mut b = vec![0u64; n + 1];
    c[0] = 1;
    b[0] = 1;
    let mut l: usize = 0; // current LFSR length
    let mut m: usize = 1; // steps since last length change
    let mut b_disc: u64 = 1; // discrepancy at the last length change

    // Scratch buffers reused across iterations: `rev` holds the syndrome
    // window reversed so the discrepancy dot-product and the C(x) update
    // both run through the batched field kernels (one backend dispatch per
    // row instead of one per coefficient).
    let mut rev = vec![0u64; n];
    let mut prod = vec![0u64; n + 1];

    for i in 0..n {
        // Discrepancy d = S_i + Σ_{j=1..L} C_j S_{i-j}: copy C_1..C_L
        // against the reversed window S_{i-1}..S_{i-L}, multiply through
        // `mul_slice`, XOR-fold.
        let mut d = syndromes[i];
        if l > 0 {
            for j in 0..l {
                rev[j] = syndromes[i - 1 - j];
            }
            prod[..l].copy_from_slice(&c[1..=l]);
            field.mul_slice(&mut prod[..l], &rev[..l]);
            for &p in &prod[..l] {
                d ^= p;
            }
        }
        if d == 0 {
            m += 1;
            continue;
        }
        // C(x) <- C(x) - (d/b) x^m B(x): one `scalar_mul_slice` row over
        // B's coefficients, XORed into C at offset m.
        let coef = field.div(d, b_disc);
        let span = n - m + 1; // j in 0..=(n - m)
        let update = |c: &mut [u64], prod: &mut [u64], b: &[u64]| {
            prod[..span].copy_from_slice(&b[..span]);
            field.scalar_mul_slice(&mut prod[..span], coef);
            for (dst, &p) in c[m..m + span].iter_mut().zip(&prod[..span]) {
                *dst ^= p;
            }
        };
        if 2 * l <= i {
            // Length change: L <- i + 1 - L, B <- old C.
            let t_prev = c.clone();
            update(&mut c, &mut prod, &b);
            l = i + 1 - l;
            b = t_prev;
            b_disc = d;
            m = 1;
        } else {
            update(&mut c, &mut prod, &b);
            m += 1;
        }
    }

    c.truncate(l + 1);
    Poly::from_coeffs(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seed's per-coefficient implementation, kept verbatim as ground
    /// truth for the slice-kernel rewrite above.
    fn berlekamp_massey_reference(syndromes: &[u64], field: &Field) -> Poly {
        let n = syndromes.len();
        let mut c = vec![0u64; n + 1];
        let mut b = vec![0u64; n + 1];
        c[0] = 1;
        b[0] = 1;
        let mut l: usize = 0;
        let mut m: usize = 1;
        let mut b_disc: u64 = 1;
        for i in 0..n {
            let mut d = syndromes[i];
            for j in 1..=l {
                if c[j] != 0 && syndromes[i - j] != 0 {
                    d ^= field.mul(c[j], syndromes[i - j]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= i {
                let t_prev = c.clone();
                let coef = field.div(d, b_disc);
                for j in 0..=(n - m) {
                    if b[j] != 0 {
                        c[j + m] ^= field.mul(coef, b[j]);
                    }
                }
                l = i + 1 - l;
                b = t_prev;
                b_disc = d;
                m = 1;
            } else {
                let coef = field.div(d, b_disc);
                for j in 0..=(n - m) {
                    if b[j] != 0 {
                        c[j + m] ^= field.mul(coef, b[j]);
                    }
                }
                m += 1;
            }
        }
        c.truncate(l + 1);
        Poly::from_coeffs(c)
    }

    #[test]
    fn slice_kernels_match_reference_implementation() {
        // Random syndrome sequences (both realizable and arbitrary ones)
        // must produce bit-identical connection polynomials.
        for m in [8u32, 11, 32] {
            let f = Field::new(m);
            let mut x = 0x0123_4567_89AB_CDEFu64;
            for t in 1..=24usize {
                let s: Vec<u64> = (0..2 * t)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                        // Mix in zero syndromes so the d == 0 branch is hit.
                        if x & 7 == 0 {
                            0
                        } else {
                            (x >> 16) % f.order()
                        }
                    })
                    .collect();
                assert_eq!(
                    berlekamp_massey(&s, &f),
                    berlekamp_massey_reference(&s, &f),
                    "BM divergence at m={m} t={t}"
                );
            }
        }
    }

    /// Build the syndromes S_1..S_2t of a difference set and check BM
    /// recovers the locator polynomial with the set's inverses as roots.
    fn check_roundtrip(m: u32, t: usize, elements: &[u64]) {
        let f = Field::new(m);
        let mut s = vec![0u64; 2 * t];
        for &e in elements {
            let mut p = e;
            for slot in s.iter_mut() {
                *slot ^= p;
                p = f.mul(p, e);
            }
        }
        let lambda = berlekamp_massey(&s, &f);
        assert_eq!(lambda.degree(), Some(elements.len()), "locator degree");
        // Each element's inverse must be a root.
        for &e in elements {
            assert_eq!(lambda.eval(f.inv(e), &f), 0, "inverse of {e} is not a root");
        }
        // Λ(0) must be 1.
        assert_eq!(lambda.coeff(0), 1);
    }

    #[test]
    fn locator_for_small_sets() {
        check_roundtrip(8, 5, &[3]);
        check_roundtrip(8, 5, &[3, 77]);
        check_roundtrip(8, 5, &[3, 77, 200, 13, 255]);
        check_roundtrip(11, 8, &[1, 2, 4, 8, 16, 32, 64, 128]);
        check_roundtrip(32, 6, &[0xDEADBEEF, 0xCAFEBABE, 0x1234, 7, 0xFFFFFFF1]);
    }

    #[test]
    fn zero_syndromes_give_constant_one() {
        let f = Field::new(8);
        let lambda = berlekamp_massey(&[0, 0, 0, 0, 0, 0], &f);
        assert_eq!(lambda, Poly::one());
    }

    #[test]
    fn arbitrary_syndromes_stay_within_bounds() {
        // Random syndromes (not from a real difference set): BM must not
        // panic and the connection polynomial length is bounded by the
        // syndrome count. (Over-capacity detection happens at decode time.)
        let f = Field::new(10);
        let t = 7;
        let s: Vec<u64> = (0..2 * t as u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 20) % f.order())
            .collect();
        let lambda = berlekamp_massey(&s, &f);
        assert!(lambda.degree_or_zero() <= 2 * t);
        assert_eq!(lambda.coeff(0), 1);
    }
}
