//! The Difference Digest (D.Digest) baseline of Eppstein et al. \[15\].
//!
//! D.Digest is the canonical IBF-based set-reconciliation scheme the paper
//! compares against (§7, §8.1): Bob sends an invertible Bloom filter of his
//! set sized for the (estimated) difference; Alice subtracts her own IBF
//! cell-wise and peels the result. Following the §8.1.1 configuration:
//!
//! * the IBF has `2·d̂` cells (the "roughly 2d cells" of §7 that account for
//!   both the estimator noise and the peeling threshold),
//! * 4 hash functions when `d̂ ≤ 200` and 3 otherwise,
//! * `d̂` comes from the same ToW estimator PBS uses (the original Strata
//!   estimator is available in the `estimator` crate and can be swapped in).
//!
//! Each cell carries three `log|U|`-bit words, so the wire cost is about
//! `6·d·log|U|` bits — the ~6× the theoretical minimum reported in §8.1.2.

//!
//! # Example
//!
//! ```
//! use ddigest::{DdigestConfig, DifferenceDigest};
//!
//! let alice: Vec<u64> = (1..=500).collect();
//! let bob: Vec<u64> = (11..=500).collect();
//! let dd = DifferenceDigest::new(DdigestConfig::default());
//! let outcome = dd.reconcile_with_estimate(&alice, &bob, 30, 7);
//! assert!(outcome.claimed_success);
//! let mut diff = outcome.recovered.clone();
//! diff.sort_unstable();
//! assert_eq!(diff, (1..=10).collect::<Vec<u64>>());
//! ```

#![warn(missing_docs)]

use estimator::{Estimator, TowEstimator};
use iblt::Iblt;
use protocol::{Direction, ReconcileOutcome, Reconciler, TimingStats, Transcript};
use std::time::Instant;
use xhash::derive_seed;

/// Configuration of the Difference Digest baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdigestConfig {
    /// Element signature width `log|U|` (only used for wire accounting; keys
    /// are stored as `u64` internally).
    pub universe_bits: u32,
    /// Cells per estimated difference element (2.0 per \[15\]).
    pub cells_per_diff: f64,
    /// Number of ToW sketches for the estimator round.
    pub estimator_sketches: usize,
    /// Safety factor applied to the estimate.
    pub inflation: f64,
}

impl Default for DdigestConfig {
    fn default() -> Self {
        DdigestConfig {
            universe_bits: 32,
            cells_per_diff: 2.0,
            estimator_sketches: estimator::DEFAULT_SKETCH_COUNT,
            // The 2·d̂ cell rule of [15] already includes the slack for
            // estimator noise, so the raw ToW estimate is used as-is; this is
            // what makes D.Digest land at ≈ 6× the theoretical minimum
            // (2 cells × 3 words × log|U| per difference element), matching
            // §8.1.2. PinSketch/PBS inflate by γ = 1.38 instead (§6.2).
            inflation: 1.0,
        }
    }
}

/// The Difference Digest reconciler.
#[derive(Debug, Clone, Default)]
pub struct DifferenceDigest {
    config: DdigestConfig,
}

impl DifferenceDigest {
    /// Create a reconciler with the given configuration.
    pub fn new(config: DdigestConfig) -> Self {
        DifferenceDigest { config }
    }

    /// The §8.1.1 hash-count rule: 4 hash functions for small differences,
    /// 3 for large ones.
    pub fn hash_count_for(d_estimate: usize) -> u32 {
        if d_estimate > 200 {
            3
        } else {
            4
        }
    }

    /// Reconcile with an externally supplied difference estimate (no
    /// estimator round).
    pub fn reconcile_with_estimate(
        &self,
        alice: &[u64],
        bob: &[u64],
        d_estimate: usize,
        seed: u64,
    ) -> ReconcileOutcome {
        let cfg = self.config;
        let d_estimate = d_estimate.max(1);
        let cells = ((d_estimate as f64 * cfg.cells_per_diff).ceil() as usize).max(8);
        let hashes = Self::hash_count_for(d_estimate);
        let table_seed = derive_seed(seed, 0x1B17);
        let mut transcript = Transcript::new();

        let encode_start = Instant::now();
        let mut table_a = Iblt::new(cells, hashes, table_seed);
        table_a.insert_batch(alice);
        let mut table_b = Iblt::new(cells, hashes, table_seed);
        table_b.insert_batch(bob);
        let encode = encode_start.elapsed();

        // Bob ships his IBF to Alice.
        transcript.send_bits(
            Direction::BobToAlice,
            "ibf",
            table_b.wire_bits(cfg.universe_bits),
        );

        let decode_start = Instant::now();
        let mut diff = table_a;
        diff.subtract(&table_b);
        // Peel in place: `diff` is already a scratch table, so the clone the
        // borrowing `peel()` pays would be thrown away.
        let peel = diff.peel_mut();
        let recovered: Vec<u64> = peel.all().collect();
        let decode = decode_start.elapsed();

        ReconcileOutcome {
            recovered,
            claimed_success: peel.complete,
            comm: transcript.stats(),
            timing: TimingStats { encode, decode },
            rounds: 1,
        }
    }
}

impl Reconciler for DifferenceDigest {
    fn name(&self) -> &'static str {
        "D.Digest"
    }

    fn reconcile(&self, a: &[u64], b: &[u64], seed: u64) -> ReconcileOutcome {
        let cfg = self.config;
        let est_seed = derive_seed(seed, 0xE57);
        let mut ea = TowEstimator::new(cfg.estimator_sketches, est_seed);
        let mut eb = TowEstimator::new(cfg.estimator_sketches, est_seed);
        ea.insert_slice(a);
        eb.insert_slice(b);
        let d_hat = ((ea.estimate(&eb) * cfg.inflation).ceil() as usize).max(1);
        self.reconcile_with_estimate(a, b, d_hat, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::symmetric_difference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_pair(n: usize, d: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = HashSet::new();
        while set.len() < n {
            set.insert((rng.random::<u64>() & 0xFFFF_FFFF).max(1));
        }
        // Sort before slicing: `HashSet` iteration order is per-process
        // random, and letting it pick *which* elements form the difference
        // made the statistical multi-seed test below flake rarely.
        let mut a: Vec<u64> = set.into_iter().collect();
        a.sort_unstable();
        let b = a[..n - d].to_vec();
        (a, b)
    }

    #[test]
    fn recovers_difference_with_good_estimate() {
        let (a, b) = random_pair(3_000, 50, 1);
        let out = DifferenceDigest::default().reconcile_with_estimate(&a, &b, 60, 5);
        assert!(out.claimed_success);
        assert!(out.matches(&symmetric_difference(&a, &b)));
    }

    #[test]
    fn estimator_driven_runs_mostly_succeed_and_never_lie() {
        // With the exact 2·d̂ sizing of [15] the peeling decoder fails a small
        // fraction of the time (the paper itself reports D.Digest slightly
        // below its 0.99 target for small d), so this exercises several seeds:
        // most runs must succeed, and a run that claims success must be exact.
        let (a, b) = random_pair(4_000, 120, 2);
        let truth = symmetric_difference(&a, &b);
        let scheme = DifferenceDigest::default();
        let mut successes = 0;
        for seed in 0..8u64 {
            let out = Reconciler::reconcile(&scheme, &a, &b, seed);
            if out.claimed_success {
                assert!(out.matches(&truth), "claimed success but wrong difference");
                successes += 1;
            }
        }
        assert!(
            successes >= 5,
            "only {successes}/8 estimator-driven runs decoded"
        );
    }

    #[test]
    fn severely_undersized_table_fails_cleanly() {
        let (a, b) = random_pair(2_000, 300, 3);
        let out = DifferenceDigest::default().reconcile_with_estimate(&a, &b, 20, 5);
        assert!(!out.claimed_success);
    }

    #[test]
    fn communication_is_about_six_times_minimum() {
        let d = 200usize;
        let (a, b) = random_pair(5_000, d, 4);
        let out = DifferenceDigest::default().reconcile_with_estimate(&a, &b, d, 9);
        let min = protocol::theoretical_minimum_bytes(d, 32);
        let ratio = out.comm.total_bytes() as f64 / min;
        // 2d cells × 3 words = 6× the minimum (§8.1.2 reports "around 6×").
        assert!(
            (5.0..=7.0).contains(&ratio),
            "D.Digest comm ratio {ratio} not ≈ 6"
        );
    }

    #[test]
    fn hash_count_rule_matches_paper() {
        assert_eq!(DifferenceDigest::hash_count_for(100), 4);
        assert_eq!(DifferenceDigest::hash_count_for(200), 4);
        assert_eq!(DifferenceDigest::hash_count_for(201), 3);
        assert_eq!(DifferenceDigest::hash_count_for(10_000), 3);
    }

    #[test]
    fn identical_sets_reconcile_to_empty() {
        let (a, _) = random_pair(1_000, 0, 6);
        let out = DifferenceDigest::default().reconcile_with_estimate(&a, &a, 10, 1);
        assert!(out.claimed_success);
        assert!(out.recovered.is_empty());
    }
}
