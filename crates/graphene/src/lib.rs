//! The Graphene baseline \[32\] (Protocol I), as evaluated in §8.2.
//!
//! Graphene couples a Bloom filter with an IBLT. In the paper's evaluation
//! setting — `B ⊂ A`, Alice learns `A△B = A\B`, Graphene's best case — Bob
//! sends:
//!
//! * a Bloom filter of `B` with false-positive rate ε, and
//! * an IBLT of `B` sized for the ≈ `ε·d` elements of `A\B` that will slip
//!   through the filter.
//!
//! Alice passes every element of `A` through the filter: elements the filter
//! rejects are certainly in `A\B`; the remaining candidate set is reconciled
//! against Bob's IBLT by subtraction + peeling. Graphene picks ε to minimize
//! `BF(|B|, ε) + IBLT(ε·d)`; when `|B| ≫ d` the optimum is ε → 1, the filter
//! is dropped entirely and the scheme degenerates to an IBLT-only solution
//! (§7) — which is exactly the regime where PBS beats it (Figure 2b), with
//! the break-even appearing only once `d` approaches `|B|`.

//!
//! # Example
//!
//! ```
//! use graphene::{Graphene, GrapheneConfig};
//!
//! let alice: Vec<u64> = (1..=2000).collect();
//! let bob: Vec<u64> = (21..=2000).collect(); // Bob misses 1..=20
//! let scheme = Graphene::new(GrapheneConfig::default());
//! let outcome = scheme.reconcile_with_hint(&alice, &bob, 20, 3);
//! assert!(outcome.claimed_success);
//! let mut diff = outcome.recovered.clone();
//! diff.sort_unstable();
//! assert_eq!(diff, (1..=20).collect::<Vec<u64>>());
//! ```

#![warn(missing_docs)]

use bloom::BloomFilter;
use iblt::Iblt;
use protocol::{Direction, ReconcileOutcome, Reconciler, TimingStats, Transcript};
use std::time::Instant;
use xhash::derive_seed;

/// Configuration of the Graphene baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrapheneConfig {
    /// Element signature width `log|U|` used for wire accounting of IBLT cells.
    pub universe_bits: u32,
    /// Multiplier of IBLT cells per expected difference element (the decoder
    /// needs some slack to peel with the 239/240 target of \[32\]).
    pub cells_per_diff: f64,
    /// Additive IBLT cell slack (keeps tiny differences decodable).
    pub extra_cells: usize,
}

impl Default for GrapheneConfig {
    fn default() -> Self {
        GrapheneConfig {
            universe_bits: 32,
            cells_per_diff: 2.0,
            extra_cells: 16,
        }
    }
}

/// The candidate Bloom-filter false-positive rates evaluated by the sizing
/// optimization (1.0 means "no Bloom filter at all").
const FPR_GRID: [f64; 9] = [1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.001];

/// The Graphene (Protocol I) reconciler.
#[derive(Debug, Clone, Default)]
pub struct Graphene {
    config: GrapheneConfig,
}

impl Graphene {
    /// Create a Graphene reconciler.
    pub fn new(config: GrapheneConfig) -> Self {
        Graphene { config }
    }

    fn iblt_cells(&self, expected_diff: f64) -> usize {
        ((expected_diff * self.config.cells_per_diff).ceil() as usize + self.config.extra_cells)
            .max(16)
    }

    fn iblt_hashes(expected_diff: f64) -> u32 {
        if expected_diff > 200.0 {
            3
        } else {
            4
        }
    }

    /// The total wire cost (bits) of a candidate (ε, |B|, d) sizing.
    fn candidate_cost(&self, fpr: f64, set_size: usize, d: usize) -> f64 {
        let iblt_diff = if fpr >= 1.0 { d as f64 } else { fpr * d as f64 };
        let iblt_bits =
            (self.iblt_cells(iblt_diff) as u64 * 3 * self.config.universe_bits as u64) as f64;
        let bf_bits = if fpr >= 1.0 {
            0.0
        } else {
            let ln2 = std::f64::consts::LN_2;
            -(set_size as f64) * fpr.ln() / (ln2 * ln2)
        };
        iblt_bits + bf_bits
    }

    /// Pick the false-positive rate minimizing the total transmission for
    /// `|B| = set_size` and difference `d` (the \[32\] optimization; 1.0 means
    /// the Bloom filter is dropped).
    pub fn optimal_fpr(&self, set_size: usize, d: usize) -> f64 {
        let mut best = (f64::INFINITY, 1.0);
        for &fpr in &FPR_GRID {
            let cost = self.candidate_cost(fpr, set_size, d);
            if cost < best.0 {
                best = (cost, fpr);
            }
        }
        best.1
    }

    /// Run Graphene Protocol I. `d_hint` is the expected difference size
    /// (exactly `|A| − |B|` in the subset setting, so no estimator round is
    /// needed, §6.2).
    pub fn reconcile_with_hint(
        &self,
        alice: &[u64],
        bob: &[u64],
        d_hint: usize,
        seed: u64,
    ) -> ReconcileOutcome {
        let cfg = self.config;
        let d = d_hint.max(1);
        let fpr = self.optimal_fpr(bob.len(), d);
        let mut transcript = Transcript::new();

        // --- Bob's encode: Bloom filter of B (optional) + IBLT of B. ---
        let encode_start = Instant::now();
        let bf = if fpr < 1.0 {
            let mut f = BloomFilter::with_rate(bob.len().max(1), fpr, derive_seed(seed, 0xBF));
            f.insert_all(bob.iter().copied());
            Some(f)
        } else {
            None
        };
        let expected_leftover = if fpr < 1.0 { fpr * d as f64 } else { d as f64 };
        let cells = self.iblt_cells(expected_leftover);
        let hashes = Self::iblt_hashes(expected_leftover);
        let table_seed = derive_seed(seed, 0x1B17);
        let mut iblt_b = Iblt::new(cells, hashes, table_seed);
        iblt_b.insert_batch(bob);
        let encode = encode_start.elapsed();

        if let Some(f) = &bf {
            transcript.send_bits(Direction::BobToAlice, "bloom-filter", f.wire_bits());
        }
        transcript.send_bits(
            Direction::BobToAlice,
            "iblt",
            iblt_b.wire_bits(cfg.universe_bits),
        );

        // --- Alice's decode: filter pass + IBLT subtraction + peel. ---
        let decode_start = Instant::now();
        let mut recovered: Vec<u64> = Vec::new();
        let mut candidates: Vec<u64> = Vec::with_capacity(alice.len());
        match &bf {
            Some(f) => {
                for &e in alice {
                    if f.contains(e) {
                        candidates.push(e);
                    } else {
                        // Definitely not in B: part of A\B.
                        recovered.push(e);
                    }
                }
            }
            None => candidates.extend_from_slice(alice),
        }
        // Build the candidate table through the batched insert kernel (the
        // candidate set is already materialized as a slice, so the 64-key
        // staging buffer of `insert_all` is pure overhead), subtract through
        // the fused kernel, and peel in place — the borrowing `peel()` would
        // clone the full table only to throw the scratch copy away.
        let mut iblt_c = Iblt::new(cells, hashes, table_seed);
        iblt_c.insert_batch(&candidates);
        iblt_c.subtract_batch(&[&iblt_b]);
        let peel = iblt_c.peel_mut();
        recovered.extend(peel.all());
        let decode = decode_start.elapsed();

        ReconcileOutcome {
            recovered,
            claimed_success: peel.complete,
            comm: transcript.stats(),
            timing: TimingStats { encode, decode },
            rounds: 1,
        }
    }
}

impl Reconciler for Graphene {
    fn name(&self) -> &'static str {
        "Graphene"
    }

    fn reconcile(&self, a: &[u64], b: &[u64], seed: u64) -> ReconcileOutcome {
        // In the subset setting the difference size is known exactly from the
        // set sizes; otherwise this is a (crude) hint and the IBLT slack plus
        // peel-failure reporting cover the error.
        let d_hint = a.len().abs_diff(b.len()).max(1);
        self.reconcile_with_hint(a, b, d_hint, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::symmetric_difference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_pair(n: usize, d: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = HashSet::new();
        while set.len() < n {
            set.insert((rng.random::<u64>() & 0xFFFF_FFFF).max(1));
        }
        // Sort before slicing: `HashSet` iteration order is per-process
        // random, and letting it pick *which* elements form the difference
        // makes multi-seed statistical tests flake rarely.
        let mut a: Vec<u64> = set.into_iter().collect();
        a.sort_unstable();
        let b = a[..n - d].to_vec();
        (a, b)
    }

    /// IBLT peeling has a small finite-size failure probability even at the
    /// recommended sizing, and failures are honestly reported; assert that a
    /// handful of attempts produces a success and that successes are exact.
    fn assert_reconciles_within_attempts(
        run: impl Fn(u64) -> protocol::ReconcileOutcome,
        truth: &std::collections::HashSet<u64>,
    ) {
        for seed in 0..5u64 {
            let out = run(seed);
            if out.claimed_success {
                assert!(out.matches(truth), "claimed success but wrong difference");
                return;
            }
        }
        panic!("no successful reconciliation in 5 attempts");
    }

    #[test]
    fn subset_case_is_recovered_exactly() {
        let (a, b) = random_pair(3_000, 40, 1);
        let truth = symmetric_difference(&a, &b);
        assert_reconciles_within_attempts(
            |seed| Reconciler::reconcile(&Graphene::default(), &a, &b, seed),
            &truth,
        );
    }

    #[test]
    fn small_difference_drops_the_bloom_filter() {
        // |B| = 100k, d = 100: the BF would cost far more than it saves.
        let g = Graphene::default();
        assert_eq!(g.optimal_fpr(100_000, 100), 1.0);
    }

    #[test]
    fn huge_difference_enables_the_bloom_filter() {
        // |B| = 10k, d = 100k: filtering pays off.
        let g = Graphene::default();
        assert!(g.optimal_fpr(10_000, 100_000) < 1.0);
    }

    #[test]
    fn two_sided_difference_still_recovered() {
        // 10 elements exclusive to Alice and 10 exclusive to Bob.
        let (pool, _) = random_pair(2_020, 0, 3);
        let a: Vec<u64> = pool[..2_010].to_vec();
        let b: Vec<u64> = pool[10..2_020].to_vec();
        let truth = symmetric_difference(&a, &b);
        assert_eq!(truth.len(), 20);
        assert_reconciles_within_attempts(
            |seed| Graphene::default().reconcile_with_hint(&a, &b, truth.len(), 9 + seed),
            &truth,
        );
    }

    #[test]
    fn communication_is_below_ddigest_style_sizing() {
        // Once the Bloom filter becomes worthwhile (d large relative to |B|),
        // Graphene's total stays below the 2d-cell D.Digest layout.
        let d = 500usize;
        let (a, b) = random_pair(5_000, d, 4);
        let truth = symmetric_difference(&a, &b);
        assert_reconciles_within_attempts(
            |seed| Graphene::default().reconcile_with_hint(&a, &b, d, 11 + seed),
            &truth,
        );
        let out = Graphene::default().reconcile_with_hint(&a, &b, d, 11);
        let ddigest_bytes = (2 * d) as u64 * 3 * 32 / 8;
        assert!(out.comm.total_bytes() < ddigest_bytes);
    }

    #[test]
    fn undersized_hint_reports_failure() {
        let (a, b) = random_pair(2_000, 400, 5);
        let out = Graphene::default().reconcile_with_hint(&a, &b, 20, 3);
        assert!(!out.claimed_success);
    }

    #[test]
    fn identical_sets() {
        let (a, _) = random_pair(1_000, 0, 6);
        let out = Reconciler::reconcile(&Graphene::default(), &a, &a, 2);
        assert!(out.claimed_success);
        assert!(out.recovered.is_empty());
    }
}
