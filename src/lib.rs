//! Umbrella crate of the PBS reproduction workspace.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the actual functionality lives
//! in the member crates, re-exported here for convenience:
//!
//! * [`pbs_core`] — the Parity Bitmap Sketch scheme (the paper's contribution)
//! * [`pbs_net`] — the networked subsystem: framed TCP transport, session
//!   server and sync client (see `docs/WIRE.md`)
//! * [`obs`] — std-only telemetry: latency histograms, the Prometheus
//!   metric registry, and structured tracing (see `docs/OBSERVABILITY.md`)
//! * [`protocol`] — the `Reconciler` trait, transcripts and workloads
//! * [`analysis`] — the Markov-chain framework and parameter optimizer
//! * [`estimator`] — ToW / Strata / min-wise difference-cardinality estimators
//! * [`bch`], [`gf`], [`xhash`] — coding and hashing substrates
//! * [`pinsketch`], [`ddigest`], [`graphene`], [`iblt`], [`bloom`] — baselines
//!   and their substrates

#![warn(missing_docs)]

pub use analysis;
pub use bch;
pub use bloom;
pub use ddigest;
pub use estimator;
pub use gf;
pub use graphene;
pub use iblt;
pub use loadgen;
pub use obs;
pub use pbs_core;
pub use pbs_net;
pub use pinsketch;
pub use protocol;
pub use xhash;
