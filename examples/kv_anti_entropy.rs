//! Distributed key-value store anti-entropy (the replica-repair motivation of
//! §1: "In distributed database systems … an update at a single node has to
//! get replicated across all other nodes eventually").
//!
//! Each replica summarizes every key-value pair as a 32-bit signature of
//! `(key, version)`. Reconciling the signature sets tells the replicas which
//! entries diverge, after which only those entries are shipped.
//!
//! ```bash
//! cargo run --release --example kv_anti_entropy
//! ```

use pbs_core::Pbs;
use std::collections::HashMap;
use xhash::xxhash64;

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    value: String,
    version: u64,
}

#[derive(Debug, Default, Clone)]
struct Replica {
    data: HashMap<String, Entry>,
}

impl Replica {
    fn put(&mut self, key: &str, value: &str, version: u64) {
        self.data.insert(
            key.to_string(),
            Entry {
                value: value.to_string(),
                version,
            },
        );
    }

    /// 32-bit signature of one (key, version) pair.
    fn signature(key: &str, version: u64) -> u64 {
        (xxhash64(key.as_bytes(), version) & 0xFFFF_FFFF).max(1)
    }

    fn signatures(&self) -> Vec<u64> {
        self.data
            .iter()
            .map(|(k, e)| Self::signature(k, e.version))
            .collect()
    }

    /// Reverse index from signature to key, used to resolve reconciliation
    /// results back to entries.
    fn by_signature(&self) -> HashMap<u64, String> {
        self.data
            .iter()
            .map(|(k, e)| (Self::signature(k, e.version), k.clone()))
            .collect()
    }
}

fn main() {
    // Build two replicas that agree on 200,000 keys…
    let mut primary = Replica::default();
    for i in 0..200_000u64 {
        primary.put(&format!("user:{i}"), &format!("profile-{i}"), 1);
    }
    let mut follower = primary.clone();

    // …then diverge: the primary takes 350 new writes and 150 updates the
    // follower has not replicated yet, and the follower has 40 writes of its
    // own (e.g. accepted during a partition).
    for i in 200_000..200_350u64 {
        primary.put(&format!("user:{i}"), &format!("profile-{i}"), 1);
    }
    for i in 0..150u64 {
        primary.put(&format!("user:{i}"), &format!("profile-{i}-v2"), 2);
    }
    for i in 300_000..300_040u64 {
        follower.put(&format!("session:{i}"), "ephemeral", 1);
    }

    // Anti-entropy pass: reconcile the signature sets.
    let sig_primary = primary.signatures();
    let sig_follower = follower.signatures();
    let report = Pbs::paper_default().reconcile(&sig_primary, &sig_follower, 0xA57);

    let primary_index = primary.by_signature();
    let follower_index = follower.by_signature();
    let mut push_to_follower = Vec::new(); // entries the follower is missing/stale on
    let mut pull_from_follower = Vec::new(); // entries only the follower has
    for sig in &report.outcome.recovered {
        if let Some(key) = primary_index.get(sig) {
            push_to_follower.push(key.clone());
        } else if let Some(key) = follower_index.get(sig) {
            pull_from_follower.push(key.clone());
        }
    }

    println!("anti-entropy report:");
    println!(
        "  replica sizes:         {} / {}",
        primary.data.len(),
        follower.data.len()
    );
    println!(
        "  estimated divergence:  {:.1}",
        report.estimated_d.unwrap_or(0.0)
    );
    println!(
        "  diverging signatures:  {}",
        report.outcome.recovered.len()
    );
    println!("  entries to push:       {}", push_to_follower.len());
    println!("  entries to pull:       {}", pull_from_follower.len());
    println!(
        "  rounds / bytes:        {} / {}",
        report.outcome.rounds,
        report.outcome.comm.total_bytes()
    );

    // Apply the repair and verify convergence.
    for key in &push_to_follower {
        let entry = primary.data[key].clone();
        follower.data.insert(key.clone(), entry);
    }
    for key in &pull_from_follower {
        let entry = follower.data[key].clone();
        primary.data.insert(key.clone(), entry);
    }
    assert_eq!(primary.data.len(), follower.data.len());
    assert!(primary
        .data
        .iter()
        .all(|(k, v)| follower.data.get(k) == Some(v)));
    println!("replicas converged ✓");
}
