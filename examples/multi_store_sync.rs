//! The PR-4 service features in one process: a multi-tenant server routing
//! two named stores plus a live `MutableStore`, clients addressing stores
//! by name, and pipelined rounds cutting wall-clock round trips.
//!
//! ```sh
//! cargo run --release --example multi_store_sync
//! ```

use pbs::pbs_net::client::{Pipeline, SyncClient};
use pbs::pbs_net::server::{Server, ServerConfig};
use pbs::pbs_net::store::{InMemoryStore, MutableStore, SetStore, StoreRegistry};
use std::sync::Arc;

fn keyed(range: std::ops::Range<u64>, mul: u64) -> Vec<u64> {
    range.map(|x| x * mul + 7).collect()
}

fn main() {
    // Two independent tenants plus a live, mutable feed.
    let blocks = Arc::new(InMemoryStore::new(keyed(1..50_000, 31)));
    let peers = Arc::new(InMemoryStore::new(keyed(1..10_000, 59)));
    let feed = Arc::new(MutableStore::new(keyed(1..5_000, 83)));

    let registry = Arc::new(StoreRegistry::new());
    registry.register("blocks", Arc::clone(&blocks) as Arc<_>);
    registry.register("peers", Arc::clone(&peers) as Arc<_>);
    registry.register("feed", Arc::clone(&feed) as Arc<_>);

    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    println!(
        "server listening on {} with stores {:?}",
        server.local_addr(),
        registry.names()
    );

    // A client of the "blocks" store, missing 300 elements, pipelining
    // three protocol rounds per request-response trip.
    let client_blocks: Vec<u64> = keyed(301..50_000, 31);
    let report = SyncClient::connect(server.local_addr())
        .expect("resolve server address")
        .store("blocks")
        .pipeline(Pipeline::Depth(3))
        .seed(42)
        .sync(&client_blocks)
        .expect("blocks sync");
    println!(
        "blocks: |A△B| = {}, verified = {}, {} protocol rounds in {} round trips (v{})",
        report.recovered.len(),
        report.verified,
        report.rounds,
        report.round_trips,
        report.negotiated_version,
    );
    assert!(report.verified && report.round_trips <= report.rounds);

    // A second tenant syncs its own store concurrently-safe by name.
    let client_peers: Vec<u64> = keyed(41..10_000, 59);
    let report = SyncClient::connect(server.local_addr())
        .expect("resolve server address")
        .store("peers")
        .seed(43)
        .sync(&client_peers)
        .expect("peers sync");
    println!(
        "peers: |A△B| = {}, verified = {}",
        report.recovered.len(),
        report.verified
    );
    assert!(report.verified);

    // The live store mutates between sessions; the changelog feeds deltas.
    let epoch = feed.epoch();
    feed.apply(&keyed(5_000..5_010, 83), &keyed(1..11, 83));
    let changes = feed.changes_since(epoch).expect("changelog intact");
    println!(
        "feed: epoch {} → {}, delta +{} −{}",
        epoch,
        feed.epoch(),
        changes.iter().map(|c| c.added.len()).sum::<usize>(),
        changes.iter().map(|c| c.removed.len()).sum::<usize>(),
    );
    let report = SyncClient::connect(server.local_addr())
        .expect("resolve server address")
        .store("feed")
        .seed(44)
        .sync(&feed.snapshot())
        .expect("feed sync");
    assert!(report.verified && report.recovered.is_empty());

    // Per-store accounting. Shut down first: that joins the workers, so
    // every session's counters are fully folded before we read them.
    let total = server.shutdown();
    for name in registry.names() {
        let entry = registry.get(&name).expect("listed");
        let s = entry.stats().snapshot();
        println!(
            "store {name:?}: {} session(s), {} rounds in {} trips, {} elements ingested",
            s.sessions_completed, s.rounds, s.round_trips, s.elements_received
        );
        assert_eq!(s.sessions_completed, 1);
    }
    assert_eq!(total.sessions_completed, 3);
    println!("server total: {} sessions ok", total.sessions_completed);
}
