//! Quickstart: reconcile two sets with PBS in a dozen lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pbs_core::Pbs;
use protocol::symmetric_difference;

fn main() {
    // Alice and Bob each hold a set of 32-bit signatures. Bob is missing a
    // handful of Alice's elements and has a few of his own.
    let alice: Vec<u64> = (1..=100_000).collect();
    let bob: Vec<u64> = (8..=100_004).collect();

    // One call runs the whole multi-round PBS protocol in-process, with the
    // ToW estimator supplying the difference-cardinality estimate.
    let pbs = Pbs::paper_default();
    let report = pbs.reconcile(&alice, &bob, 42);

    let mut diff = report.outcome.recovered.clone();
    diff.sort_unstable();
    println!(
        "reconciliation succeeded: {}",
        report.outcome.claimed_success
    );
    println!("estimated d:   {:.1}", report.estimated_d.unwrap_or(0.0));
    println!(
        "parameters:    n = {}, t = {}, {} groups",
        report.params.n, report.params.t, report.groups
    );
    println!("rounds used:   {}", report.outcome.rounds);
    println!("bytes on wire: {}", report.outcome.comm.total_bytes());
    println!(
        "vs. minimum:   {:.2}x (d·log|U| = {} bytes)",
        report.outcome.comm.total_bytes() as f64
            / protocol::theoretical_minimum_bytes(diff.len(), 32),
        protocol::theoretical_minimum_bytes(diff.len(), 32)
    );
    println!(
        "difference ({} elements): {:?} ...",
        diff.len(),
        &diff[..8.min(diff.len())]
    );

    // Sanity-check against the ground truth.
    let truth = symmetric_difference(&alice, &bob);
    assert!(report.outcome.matches(&truth));
    println!("matches ground truth ✓");
}
