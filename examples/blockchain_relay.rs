//! Blockchain transaction relay (the paper's §1.3.4 motivating application).
//!
//! Two peers keep mempools of transactions. Periodically they reconcile the
//! *short transaction IDs* (64-bit hashes of the 256-bit txids, as in Erlay)
//! instead of exchanging full inventories. This example drives the explicit
//! two-party API ([`AliceSession`]/[`BobSession`]) so the messages could just
//! as well be shipped over a socket, and then "synchronizes" the referenced
//! transactions.
//!
//! ```bash
//! cargo run --release --example blockchain_relay
//! ```

use pbs_core::{AliceSession, BobSession, Pbs, PbsConfig};
use std::collections::HashMap;
use xhash::xxhash64;

/// A toy transaction: a 256-bit id plus a payload.
#[derive(Debug, Clone)]
struct Transaction {
    txid: [u8; 32],
    #[allow(dead_code)]
    payload: Vec<u8>,
}

impl Transaction {
    fn new(i: u64) -> Self {
        let mut txid = [0u8; 32];
        for (j, chunk) in txid.chunks_mut(8).enumerate() {
            chunk.copy_from_slice(&xxhash64(&i.to_le_bytes(), j as u64).to_le_bytes());
        }
        Transaction {
            txid,
            payload: vec![0xAB; 250],
        }
    }

    /// 64-bit short id (Erlay compresses 256-bit txids to save relay
    /// bandwidth; collisions are resolved by the application layer).
    fn short_id(&self, salt: u64) -> u64 {
        xxhash64(&self.txid, salt).max(1)
    }
}

/// A peer's mempool, indexed by short id.
struct Mempool {
    by_short_id: HashMap<u64, Transaction>,
}

impl Mempool {
    fn new(salt: u64, txs: impl IntoIterator<Item = Transaction>) -> Self {
        let mut by_short_id = HashMap::new();
        for tx in txs {
            by_short_id.insert(tx.short_id(salt), tx);
        }
        Mempool { by_short_id }
    }

    fn short_ids(&self) -> Vec<u64> {
        self.by_short_id.keys().copied().collect()
    }
}

fn main() {
    // Both peers have seen most of the same 40,000 transactions; each has a
    // few hundred the other has not seen yet.
    let shared: Vec<Transaction> = (0..40_000).map(Transaction::new).collect();
    let only_peer_a: Vec<Transaction> = (100_000..100_230).map(Transaction::new).collect();
    let only_peer_b: Vec<Transaction> = (200_000..200_170).map(Transaction::new).collect();
    let salt = 0x5a17;

    let peer_a = Mempool::new(
        salt,
        shared.iter().cloned().chain(only_peer_a.iter().cloned()),
    );
    let peer_b = Mempool::new(
        salt,
        shared.iter().cloned().chain(only_peer_b.iter().cloned()),
    );

    // Reconcile the short-id sets with the explicit two-party API. 64-bit
    // short ids -> universe_bits = 64.
    let cfg = PbsConfig::paper_default()
        .with_universe_bits(64)
        .unlimited_rounds();
    let true_d = only_peer_a.len() + only_peer_b.len();
    let params = Pbs::new(cfg).plan(true_d + true_d / 3); // peer-estimated d with slack
    let ids_a = peer_a.short_ids();
    let ids_b = peer_b.short_ids();

    let mut alice = AliceSession::new(cfg, params, &ids_a, 7);
    let mut bob = BobSession::new(cfg, params, &ids_b, 7);

    let mut wire_bits = 0u64;
    let mut round = 0;
    loop {
        round += 1;
        let sketches = alice.start_round();
        wire_bits += sketches.iter().map(|s| s.wire_bits(params.m)).sum::<u64>();
        let reports = bob.handle_sketches(&sketches);
        wire_bits += reports
            .iter()
            .map(|r| r.wire_bits(params.m, 64))
            .sum::<u64>();
        let status = alice.apply_reports(&reports);
        println!(
            "round {round}: recovered {} short ids, {} sessions still open",
            status.recovered_this_round, status.active_sessions
        );
        if status.all_verified || round >= 8 {
            break;
        }
    }

    let missing = alice.recovered_so_far();
    let need_from_b: Vec<&Transaction> = missing
        .iter()
        .filter_map(|id| peer_b.by_short_id.get(id))
        .collect();
    let announce_to_b: Vec<&Transaction> = missing
        .iter()
        .filter_map(|id| peer_a.by_short_id.get(id))
        .collect();

    println!();
    println!("relay summary:");
    println!("  mempool sizes:        {} / {}", ids_a.len(), ids_b.len());
    println!("  true difference:      {true_d} transactions");
    println!("  recovered short ids:  {}", missing.len());
    println!("  to fetch from peer B: {}", need_from_b.len());
    println!("  to announce to B:     {}", announce_to_b.len());
    println!("  reconciliation bytes: {}", wire_bits / 8);
    println!(
        "  naive inventory cost: {} bytes (8-byte short id per mempool entry)",
        8 * ids_b.len()
    );
    assert_eq!(missing.len(), true_d);
    println!("all differences found ✓");
}
