//! End-to-end networked reconciliation in one process: spin up a
//! `pbs_net::Server` on a loopback socket, sync a client set against it,
//! and print what the wire carried.
//!
//! ```sh
//! cargo run --release --example tcp_sync
//! ```

use pbs::pbs_net::client::SyncClient;
use pbs::pbs_net::server::{InMemoryStore, Server, ServerConfig};
use std::sync::Arc;

fn main() {
    // The server holds 100k elements; the client is missing 40 of them and
    // holds 60 the server has never seen. Elements must fit the configured
    // universe (32-bit signatures by default).
    let pool: Vec<u64> = (1..=100_060u64).map(|x| x * 31 + 7).collect();
    let server_set: Vec<u64> = pool[..100_000].to_vec();
    let client_set: Vec<u64> = pool[40..].to_vec();

    let store = Arc::new(InMemoryStore::new(server_set));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    println!("server listening on {}", server.local_addr());

    let report = SyncClient::connect(server.local_addr())
        .expect("resolve server address")
        .seed(42)
        .sync(&client_set)
        .expect("sync");

    println!(
        "reconciled: |A△B| = {} ({} pushed to the server), verified = {}",
        report.recovered.len(),
        report.pushed.len(),
        report.verified,
    );
    println!(
        "estimator: d̂ = {:.1} → parameterized for d = {}",
        report.estimated_d.unwrap_or(f64::NAN),
        report.d_param,
    );
    println!(
        "wire: {} B up / {} B down over {} frames in {} rounds",
        report.bytes_sent,
        report.bytes_received,
        report.frames_sent + report.frames_received,
        report.rounds,
    );

    let stats = server.shutdown();
    println!(
        "server: {} session(s), {} elements ingested, store now {} elements",
        stats.sessions_completed,
        stats.elements_received,
        store.len(),
    );
    assert!(report.verified);
    assert_eq!(store.len(), pool.len());
    println!("both sides hold the full {}-element union", pool.len());
}
