//! Cloud-storage style directory synchronization (the Dropbox/OneDrive
//! motivation of §1): two devices hold large file trees; only file *metadata
//! signatures* are reconciled, and the (much larger) file contents are
//! transferred only for files that actually changed.
//!
//! This example also contrasts PBS with the naive "send the whole listing"
//! approach and with the Difference Digest baseline on the same tree.
//!
//! ```bash
//! cargo run --release --example file_sync
//! ```

use ddigest::DifferenceDigest;
use pbs_core::{Pbs, PbsConfig};
use protocol::Reconciler;
use std::collections::HashMap;
use xhash::xxhash64;

#[derive(Debug, Clone, PartialEq)]
struct FileMeta {
    path: String,
    size: u64,
    mtime: u64,
    content_hash: u64,
}

impl FileMeta {
    /// 32-bit signature covering path and content hash — any content change
    /// changes the signature.
    fn signature(&self) -> u64 {
        let mut buf = Vec::with_capacity(self.path.len() + 8);
        buf.extend_from_slice(self.path.as_bytes());
        buf.extend_from_slice(&self.content_hash.to_le_bytes());
        (xxhash64(&buf, 0xF11E) & 0xFFFF_FFFF).max(1)
    }
}

fn make_tree(files: u64) -> Vec<FileMeta> {
    (0..files)
        .map(|i| FileMeta {
            path: format!("photos/{:04}/img_{i:07}.jpg", i % 512),
            size: 2_000_000 + (i % 977) * 1_000,
            mtime: 1_700_000_000 + i,
            content_hash: xxhash64(&i.to_le_bytes(), 0xC0),
        })
        .collect()
}

fn main() {
    // The laptop and the cloud agree on 300k files; the laptop edited 600 and
    // added 200, while the cloud received 150 files from another device.
    let mut laptop = make_tree(300_000);
    let mut cloud = laptop.clone();
    for f in laptop.iter_mut().take(600) {
        f.content_hash ^= 0xDEAD_BEEF;
        f.mtime += 10;
    }
    laptop.extend(make_tree(200).into_iter().map(|mut f| {
        f.path = format!("new/{}", f.path);
        f
    }));
    cloud.extend(make_tree(150).into_iter().map(|mut f| {
        f.path = format!("other-device/{}", f.path);
        f
    }));

    let sig_laptop: Vec<u64> = laptop.iter().map(FileMeta::signature).collect();
    let sig_cloud: Vec<u64> = cloud.iter().map(FileMeta::signature).collect();
    let laptop_index: HashMap<u64, &FileMeta> = laptop.iter().map(|f| (f.signature(), f)).collect();
    let cloud_index: HashMap<u64, &FileMeta> = cloud.iter().map(|f| (f.signature(), f)).collect();

    // --- PBS ---
    // ~1.5k differing signatures across ~300k files: let PBS keep splitting
    // failed groups past the 3-round planning target until everything
    // verifies (the paper's 0.99 success target is per *instance*; a sync
    // client needs this particular instance to finish).
    let pbs_report = Pbs::new(PbsConfig::paper_default().unlimited_rounds()).reconcile(
        &sig_laptop,
        &sig_cloud,
        0x51DC,
    );
    let mut upload = Vec::new();
    let mut download = Vec::new();
    let mut bytes_to_move = 0u64;
    for sig in &pbs_report.outcome.recovered {
        if let Some(f) = laptop_index.get(sig) {
            upload.push(&f.path);
            bytes_to_move += f.size;
        } else if let Some(f) = cloud_index.get(sig) {
            download.push(&f.path);
            bytes_to_move += f.size;
        }
    }

    // --- Baselines for comparison on the same listing ---
    let ddigest_out = DifferenceDigest::default().reconcile(&sig_laptop, &sig_cloud, 0x51DC);
    let naive_listing_bytes = 4 * sig_cloud.len() as u64; // ship every 32-bit signature

    println!(
        "directory sync (files: laptop {} / cloud {}):",
        laptop.len(),
        cloud.len()
    );
    println!(
        "  changed or new files found: {}",
        pbs_report.outcome.recovered.len()
    );
    println!(
        "  uploads: {}   downloads: {}",
        upload.len(),
        download.len()
    );
    println!(
        "  file payload to transfer:   {:.1} MB",
        bytes_to_move as f64 / 1e6
    );
    println!();
    println!("metadata reconciliation cost:");
    println!(
        "  PBS:       {:>10} bytes ({} rounds)",
        pbs_report.outcome.comm.total_bytes(),
        pbs_report.outcome.rounds
    );
    println!(
        "  D.Digest:  {:>10} bytes (success: {})",
        ddigest_out.comm.total_bytes(),
        ddigest_out.claimed_success
    );
    println!("  naive:     {naive_listing_bytes:>10} bytes (full signature listing)");
    assert!(pbs_report.outcome.claimed_success);
    assert!(pbs_report.outcome.comm.total_bytes() < naive_listing_bytes / 10);
    println!("PBS cost is a small fraction of shipping the listing ✓");
}
