//! Cross-crate integration tests: every reconciliation scheme in the
//! workspace is run on the same workloads and must recover the same ground
//! truth, with communication ordered the way the paper reports.

use ddigest::DifferenceDigest;
use graphene::Graphene;
use pbs_core::Pbs;
use pinsketch::{PinSketch, PinSketchWp};
use protocol::{symmetric_difference, Reconciler, Workload};

fn all_schemes() -> Vec<Box<dyn Reconciler>> {
    vec![
        Box::new(Pbs::paper_default()),
        Box::new(PinSketch::default()),
        Box::new(PinSketchWp::default()),
        Box::new(DifferenceDigest::default()),
        Box::new(Graphene::default()),
    ]
}

/// Run a scheme on a pair, allowing a few seeds: probabilistic schemes
/// (IBLT peeling) occasionally fail to decode and honestly report it; what
/// must always hold is (a) at least one nearby seed succeeds and (b) any run
/// that claims success recovered exactly the right difference.
fn reconcile_robustly(
    scheme: &dyn Reconciler,
    a: &[u64],
    b: &[u64],
    truth: &std::collections::HashSet<u64>,
    base_seed: u64,
) {
    let mut succeeded = false;
    for attempt in 0..4u64 {
        let out = scheme.reconcile(a, b, base_seed + attempt);
        if out.claimed_success {
            assert!(
                out.matches(truth),
                "{} claimed success but recovered a wrong difference",
                scheme.name()
            );
            succeeded = true;
            break;
        }
    }
    assert!(
        succeeded,
        "{} failed to reconcile in 4 attempts",
        scheme.name()
    );
}

#[test]
fn every_scheme_recovers_the_same_difference() {
    let workload = Workload {
        set_size: 5_000,
        d: 60,
        universe_bits: 32,
        subset_mode: true,
    };
    let pair = workload.generate(11);
    let truth = symmetric_difference(&pair.a, &pair.b);
    for scheme in all_schemes() {
        reconcile_robustly(scheme.as_ref(), &pair.a, &pair.b, &truth, 21);
    }
}

#[test]
fn every_scheme_handles_identical_sets() {
    let workload = Workload {
        set_size: 3_000,
        d: 0,
        universe_bits: 32,
        subset_mode: true,
    };
    let pair = workload.generate(5);
    for scheme in all_schemes() {
        let out = scheme.reconcile(&pair.a, &pair.b, 3);
        assert!(
            out.claimed_success,
            "{} failed on identical sets",
            scheme.name()
        );
        assert!(
            out.recovered.is_empty(),
            "{} invented differences",
            scheme.name()
        );
    }
}

#[test]
fn every_scheme_handles_two_sided_differences() {
    let workload = Workload {
        set_size: 4_000,
        d: 80,
        universe_bits: 32,
        subset_mode: false,
    };
    let pair = workload.generate(17);
    let truth = symmetric_difference(&pair.a, &pair.b);
    for scheme in all_schemes() {
        // Graphene Protocol I infers the difference size from |A| − |B|
        // (exact in the paper's B ⊂ A evaluation setting, §8.2); with a
        // two-sided difference and equal set sizes that inference degenerates,
        // so it is exercised on this workload via its explicit-hint API
        // instead (covered in the graphene crate's own tests).
        if scheme.name() == "Graphene" {
            let ok = (0..4u64).any(|attempt| {
                let out = graphene::Graphene::default().reconcile_with_hint(
                    &pair.a,
                    &pair.b,
                    truth.len(),
                    29 + attempt,
                );
                out.claimed_success && out.matches(&truth)
            });
            assert!(ok, "Graphene with hint failed in 4 attempts");
            continue;
        }
        reconcile_robustly(scheme.as_ref(), &pair.a, &pair.b, &truth, 29);
    }
}

#[test]
fn communication_ordering_matches_the_paper() {
    // §8.1.2 / §8.2 shape check at reduced scale: PBS lands near twice the
    // theoretical minimum, the IBF-based D.Digest near six times it, and the
    // ECC-based PinSketch stays well below the IBF family (its sketch alone
    // is 1.38× the minimum; the echoed difference it ships back puts its
    // total near PBS at this scale).
    let d = 200usize;
    let workload = Workload {
        set_size: 20_000,
        d,
        universe_bits: 32,
        subset_mode: true,
    };
    let pair = workload.generate(23);
    let run = |s: &dyn Reconciler| s.reconcile(&pair.a, &pair.b, 31).comm.total_bytes();
    let pbs = run(&Pbs::paper_default());
    let pinsketch = run(&PinSketch::default());
    let ddigest = run(&DifferenceDigest::default());
    let minimum = protocol::theoretical_minimum_bytes(d, 32);

    let pbs_ratio = pbs as f64 / minimum;
    let pinsketch_ratio = pinsketch as f64 / minimum;
    let dd_ratio = ddigest as f64 / minimum;
    assert!(
        (pbs as f64) < (ddigest as f64),
        "PBS ({pbs}) should be cheaper than D.Digest ({ddigest})"
    );
    assert!(
        (pinsketch as f64) < (ddigest as f64),
        "PinSketch ({pinsketch}) should be cheaper than D.Digest ({ddigest})"
    );
    assert!((1.8..=3.5).contains(&pbs_ratio), "PBS ratio {pbs_ratio}");
    assert!(
        (1.3..=3.0).contains(&pinsketch_ratio),
        "PinSketch ratio {pinsketch_ratio}"
    );
    assert!((5.0..=7.5).contains(&dd_ratio), "D.Digest ratio {dd_ratio}");
}

#[test]
fn pbs_success_rate_meets_target_across_trials() {
    // A miniature Figure 1a point: the empirical success rate over repeated
    // trials must reach the 0.99 target (with 40 trials we simply require no
    // more than one failure).
    let workload = Workload {
        set_size: 10_000,
        d: 100,
        universe_bits: 32,
        subset_mode: true,
    };
    let pbs = Pbs::paper_default();
    let mut failures = 0;
    for trial in 0..40u64 {
        let pair = workload.generate(1000 + trial);
        let out = Reconciler::reconcile(&pbs, &pair.a, &pair.b, trial);
        if !out.matches(&symmetric_difference(&pair.a, &pair.b)) {
            failures += 1;
        }
    }
    // The target is 0.99; with 40 trials allow the small-sample wobble a
    // ~1% per-trial failure rate produces.
    assert!(failures <= 3, "{failures} failures out of 40 trials");
}
