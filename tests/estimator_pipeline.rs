//! Integration tests of the estimator → parameter-planning → reconciliation
//! pipeline (§6.2): PBS parameterized by the ToW estimate must still meet its
//! success target, and the analytical plan must react to the estimate.

use analysis::{optimize_parameters, SuccessModel};
use estimator::{Estimator, TowEstimator};
use pbs_core::{Pbs, PbsConfig};
use protocol::{symmetric_difference, Workload};

#[test]
fn estimate_drives_parameter_choice() {
    // A larger d estimate must never shrink the group count.
    let small = Pbs::paper_default().plan(100);
    let large = Pbs::paper_default().plan(10_000);
    assert!(large.groups > small.groups);
    assert_eq!(small.groups, 20);
    assert_eq!(large.groups, 2_000);
}

#[test]
fn end_to_end_with_estimator_meets_target() {
    let workload = Workload {
        set_size: 8_000,
        d: 150,
        universe_bits: 32,
        subset_mode: true,
    };
    let pbs = Pbs::paper_default();
    let mut failures = 0;
    for trial in 0..25u64 {
        let pair = workload.generate(50 + trial);
        let report = pbs.reconcile(&pair.a, &pair.b, trial);
        assert!(report.estimated_d.is_some());
        if !report
            .outcome
            .matches(&symmetric_difference(&pair.a, &pair.b))
        {
            failures += 1;
        }
    }
    assert!(failures <= 2, "{failures} failures out of 25");
}

#[test]
fn underestimated_d_is_repaired_by_extra_rounds() {
    // Force a 4x under-estimate of d. With the round cap lifted, the BCH
    // decode failures and 3-way splits must still converge to the exact
    // difference (correctness is guaranteed by the checksum, §2.2.3).
    let workload = Workload {
        set_size: 6_000,
        d: 400,
        universe_bits: 32,
        subset_mode: true,
    };
    let pair = workload.generate(77);
    let pbs = Pbs::new(PbsConfig::paper_default().unlimited_rounds());
    let report = pbs.reconcile_with_known_d(&pair.a, &pair.b, 100, 5);
    assert!(report.outcome.claimed_success);
    assert!(report
        .outcome
        .matches(&symmetric_difference(&pair.a, &pair.b)));
    assert!(report.decode_failures > 0, "expected BCH decode failures");
}

#[test]
fn tow_estimate_feeds_optimizer_consistently() {
    // Build a real ToW estimate and check the optimizer accepts it and
    // returns parameters satisfying the bound.
    let workload = Workload {
        set_size: 10_000,
        d: 500,
        universe_bits: 32,
        subset_mode: true,
    };
    let pair = workload.generate(3);
    let mut ea = TowEstimator::paper_default(9);
    let mut eb = TowEstimator::paper_default(9);
    for &x in &pair.a {
        ea.insert(x);
    }
    for &x in &pair.b {
        eb.insert(x);
    }
    let d_param = ea.conservative_estimate(&eb);
    assert!(d_param >= 400, "γ-inflated estimate {d_param} too low");
    for model in [
        SuccessModel::SplitAware,
        SuccessModel::PessimisticTruncation,
    ] {
        let opt = analysis::optimize_parameters_with_model(d_param, 5, 3, 0.99, model)
            .or_else(|_| optimize_parameters(d_param, 5, 3, 0.99));
        if let Ok(opt) = opt {
            assert!(opt.lower_bound >= 0.99);
            assert!(opt.t >= 5);
        }
    }
}
