//! Anti-entropy mesh soak: a small ring of `pbs-syncd`-shaped nodes —
//! every link routed through a fault-injection proxy — converges to an
//! identical store on every node despite a partition, concurrent writes
//! on both sides of it, and a kill/restart of a durable node mid-soak.
//!
//! The soak drives [`pbs_net::mesh::anti_entropy_round`] synchronously
//! (the same unit the `pbs-syncd --anti-entropy` background driver loops
//! on) so the schedule is deterministic given the seed; the writer thread
//! is the only concurrency, and it stops before the final convergence
//! sweeps. Asserted along the way:
//!
//! * **Convergence**: after the faults heal, every node's `(set, epoch)`
//!   store snapshot is element-identical, and equals exactly the union of
//!   the initial sets and every write the soak made — nothing lost,
//!   nothing invented.
//! * **Durability**: the killed node recovers its pre-kill elements from
//!   its WAL (PR 6) and rejoins the mesh through a repointed proxy.
//! * **Exact byte accounting**: every proxy's relay ledger conserves
//!   bytes (`received == forwarded + discarded`, both directions), and on
//!   the fault-free control link the mesh's own per-peer byte counters
//!   equal what the proxy forwarded, byte for byte.
//! * **Delta continuity**: an epoch a client cached *mid-soak* against a
//!   surviving node still delta-syncs after the soak — no
//!   `FullResyncRequired` fallback — because anti-entropy applies
//!   remote differences as ordinary epoch-advancing batches.
//!
//! `MESH_SOAK_SEED` pins the seed (CI does); default is a fixed constant,
//! so the soak is reproducible either way.

use loadgen::FaultProxy;
use pbs_net::client::{sync, ClientConfig};
use pbs_net::mesh::{anti_entropy_round, MeshStats};
use pbs_net::server::{Server, ServerConfig};
use pbs_net::store::{MutableStore, StoreOptions, StoreRegistry};
use pbs_net::wal::DurableOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Nodes in the ring. Node `NODES-1` is durable (WAL-backed) and is the
/// one killed and restarted mid-soak.
const NODES: usize = 4;
/// Writer iterations; each writes one element to every in-memory node.
const WRITER_ITERATIONS: usize = 30;

fn soak_seed() -> u64 {
    std::env::var("MESH_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_50AC)
}

fn bind_node(registry: &Arc<StoreRegistry>) -> Server {
    Server::bind_registry("127.0.0.1:0", Arc::clone(registry), ServerConfig::default())
        .expect("bind mesh node")
}

fn node_snapshot(registry: &StoreRegistry) -> Vec<u64> {
    let entry = registry.get("").expect("default store");
    let (mut set, _epoch) = entry.store().epoch_snapshot();
    set.sort_unstable();
    set
}

/// One full sweep: every node reconciles against its ring successor
/// through that link's proxy. Returns how many pairwise syncs failed.
fn sweep(
    registries: &[Arc<StoreRegistry>],
    peers: &[String],
    stats: &[Arc<MeshStats>],
    config: &ClientConfig,
) -> usize {
    let mut failed = 0;
    for i in 0..registries.len() {
        let peer_stats = stats[i].peer(&peers[i]).expect("peer registered");
        let (outcome, _err) = anti_entropy_round(&registries[i], &peers[i], config, peer_stats);
        failed += outcome.failed;
    }
    failed
}

#[test]
fn mesh_converges_under_partition_churn_and_restart() {
    let seed = soak_seed();
    eprintln!("mesh_soak: seed {seed:#x} ({NODES} nodes)");
    let mut rng = StdRng::seed_from_u64(seed);
    let durable_dir = std::env::temp_dir().join(format!("pbs-mesh-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&durable_dir);
    std::fs::create_dir_all(&durable_dir).expect("create soak dir");

    // Every element the soak ever introduces: the convergence target.
    let expected = Arc::new(Mutex::new(HashSet::new()));

    // ---- Nodes: NODES-1 in-memory stores + one durable tail node ----
    // Shared base plus a unique wedge per node, so the first sweeps have
    // real differences to reconcile in both directions.
    let base: Vec<u64> = (1..=64).collect();
    expected.lock().unwrap().extend(base.iter().copied());
    let mut registries: Vec<Arc<StoreRegistry>> = Vec::new();
    let mut mutable_stores: Vec<Arc<MutableStore>> = Vec::new();
    for i in 0..NODES - 1 {
        let wedge: Vec<u64> = (0..20).map(|k| 1_000 * (i as u64 + 1) + k).collect();
        expected.lock().unwrap().extend(wedge.iter().copied());
        let store = Arc::new(MutableStore::new(base.iter().chain(&wedge).copied()));
        mutable_stores.push(Arc::clone(&store));
        let registry = Arc::new(StoreRegistry::new());
        registry.register("", store as Arc<_>);
        registries.push(registry);
    }
    let durable = NODES - 1;
    let durable_wedge: Vec<u64> = (0..20).map(|k| 1_000 * (durable as u64 + 1) + k).collect();
    expected
        .lock()
        .unwrap()
        .extend(durable_wedge.iter().copied());
    let registry = Arc::new(StoreRegistry::new());
    registry.set_persistence_root(&durable_dir);
    let (durable_store, _recovery) = registry
        .register_durable("", DurableOptions::default(), StoreOptions::default())
        .expect("open durable store");
    durable_store.apply(&base, &[]);
    durable_store.apply(&durable_wedge, &[]);
    registries.push(registry);

    let mut servers: Vec<Server> = registries.iter().map(bind_node).collect();

    // ---- Links: a ring, every link through its own fault proxy ----
    // proxies[i] relays node i's syncs to node (i+1) % NODES.
    // proxies[0] (0 → 1) is the fault-free control link: nothing is ever
    // injected on it, so its ledger must match the mesh counters exactly.
    let proxies: Vec<FaultProxy> = (0..NODES)
        .map(|i| FaultProxy::spawn(servers[(i + 1) % NODES].local_addr()).expect("spawn proxy"))
        .collect();
    let peers: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();
    let stats: Vec<Arc<MeshStats>> = peers
        .iter()
        .map(|p| Arc::new(MeshStats::new(std::slice::from_ref(p))))
        .collect();
    let config = ClientConfig::default();

    // ---- Concurrent writer over the in-memory nodes ----
    let stop_writer = Arc::new(AtomicBool::new(false));
    let writer = {
        let stores = mutable_stores.clone();
        let stop = Arc::clone(&stop_writer);
        let expected = Arc::clone(&expected);
        let mut wrng = StdRng::seed_from_u64(rng.random());
        std::thread::spawn(move || {
            for iter in 0..WRITER_ITERATIONS {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                for (i, store) in stores.iter().enumerate() {
                    let element =
                        10_000_000 * (i as u64 + 1) + iter as u64 * 100 + wrng.random_range(0..100);
                    expected.lock().unwrap().insert(element);
                    store.apply(&[element], &[]);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    // ---- Phase 1: healthy sweeps, writes in flight ----
    for _ in 0..2 {
        let failed = sweep(&registries, &peers, &stats, &config);
        assert_eq!(failed, 0, "healthy mesh: no pairwise sync may fail");
    }

    // Mid-soak epoch capture against node 0 (a survivor): a client that
    // syncs now and caches the epoch must still be delta-servable after
    // the whole soak.
    let cached_view = node_snapshot(&registries[0]);
    let mid_report =
        sync(servers[0].local_addr(), &cached_view, &config).expect("mid-soak client sync");
    assert!(mid_report.verified);
    let cached_epoch = mid_report.epoch.expect("node 0 keeps epochs");

    // ---- Phase 2: partition {0, 1} | {2, …}, writes on both sides ----
    proxies[1].partition(); // link 1 → 2 crosses the cut
    proxies[NODES - 1].partition(); // link NODES-1 → 0 crosses the cut
    for step in 0..3u64 {
        // Both sides keep writing: the in-memory side via the writer
        // thread, the durable side right here.
        let element = 20_000_000 + step;
        expected.lock().unwrap().insert(element);
        durable_store.apply(&[element], &[]);
        let failed = sweep(&registries, &peers, &stats, &config);
        assert!(failed >= 1, "the severed links cannot sync while cut");
    }

    // ---- Phase 3: heal, then kill and restart the durable node ----
    proxies[1].heal();
    proxies[NODES - 1].heal();
    sweep(&registries, &peers, &stats, &config);

    let pre_kill = node_snapshot(&registries[durable]);
    servers.remove(durable).shutdown();
    drop(durable_store);
    registries.pop();
    // Recovery: reopen the WAL-backed store from disk — the restarted
    // node must come back with exactly the set it held when it died.
    let registry = Arc::new(StoreRegistry::new());
    registry.set_persistence_root(&durable_dir);
    let (_recovered_store, _recovery) = registry
        .register_durable("", DurableOptions::default(), StoreOptions::default())
        .expect("recover durable store");
    registries.push(Arc::clone(&registry));
    assert_eq!(
        node_snapshot(&registry),
        pre_kill,
        "the durable node must recover its pre-kill set from the WAL"
    );
    let revived = bind_node(&registry);
    // Repoint the inbound link at the restarted process's new address.
    proxies[durable - 1].set_upstream(revived.local_addr());
    servers.push(revived);

    // ---- Phase 4: quiesce writes, sweep to convergence ----
    stop_writer.store(true, Ordering::SeqCst);
    writer.join().expect("writer thread");
    let expected: Vec<u64> = {
        let mut v: Vec<u64> = expected.lock().unwrap().iter().copied().collect();
        v.sort_unstable();
        v
    };
    let mut converged = false;
    for round in 0..12 {
        sweep(&registries, &peers, &stats, &config);
        let snapshots: Vec<Vec<u64>> = registries.iter().map(|r| node_snapshot(r)).collect();
        if snapshots.iter().all(|s| *s == expected) {
            eprintln!("mesh_soak: converged after {} post-churn sweeps", round + 1);
            converged = true;
            break;
        }
    }
    assert!(converged, "mesh failed to converge within 12 sweeps");

    // ---- Delta continuity on a survivor ----
    let delta_config = ClientConfig::builder().delta_epoch(cached_epoch).build();
    let resumed = sync(servers[0].local_addr(), &cached_view, &delta_config)
        .expect("post-soak delta sync from the mid-soak epoch");
    assert!(
        !resumed.delta_fallback,
        "the mid-soak epoch must still be delta-servable"
    );
    let delta = resumed.delta.expect("delta path taken");
    assert_eq!(delta.from_epoch, cached_epoch);
    assert!(
        delta.added.len() as u64 >= 1,
        "the soak wrote through node 0 after the capture"
    );

    // ---- Exact byte accounting ----
    // Every relay conserved bytes, and the fault-free control link's
    // forwarded bytes equal the mesh's own wire ledgers exactly. The
    // relay threads count a chunk after writing it, so give the ledgers a
    // moment to settle after the last sync returned.
    let control = stats[0].snapshot().remove(0);
    assert_eq!(control.peer, peers[0]);
    assert_eq!(
        control.syncs_failed, 0,
        "the control link is never faulted: every sync completes"
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let ledger = proxies[0].ledger();
        let exact = ledger.conserved()
            && ledger.forwarded_up == control.bytes_sent
            && ledger.forwarded_down == control.bytes_received
            && ledger.discarded_up == 0
            && ledger.discarded_down == 0;
        if exact {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "control-link ledger must match the mesh byte counters exactly: \
             {ledger:?} vs sent {} received {}",
            control.bytes_sent,
            control.bytes_received
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    for (i, proxy) in proxies.iter().enumerate() {
        let ledger = proxy.ledger();
        assert!(
            ledger.conserved(),
            "link {i}: relay bytes must balance, got {ledger:?}"
        );
        proxy.shutdown();
    }

    for server in servers {
        let stats = server.shutdown();
        assert_eq!(
            stats.sessions_started,
            stats.sessions_completed + stats.sessions_failed,
            "a mesh node leaked a session"
        );
    }
    let _ = std::fs::remove_dir_all(&durable_dir);
}
