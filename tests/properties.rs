//! Workspace-level property-based tests: for arbitrary set pairs, PBS (and
//! the substrates it composes) must uphold the paper's core invariants.

use bch::BchCodec;
use iblt::Iblt;
use pbs_core::{Pbs, PbsConfig};
use proptest::collection::hash_set;
use proptest::prelude::*;
use protocol::symmetric_difference;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PBS with unlimited rounds always terminates with the exact difference,
    /// regardless of how the elements are distributed or how wrong the
    /// parameterized d is.
    #[test]
    fn pbs_always_reconciles_exactly(
        base in hash_set(1u64..0xFFFF_FFFF, 50..400),
        removed_count in 0usize..40,
        added in hash_set(1u64..0xFFFF_FFFF, 0..40),
        d_guess in 1usize..60,
        seed in any::<u64>(),
    ) {
        let a: Vec<u64> = base.iter().copied().collect();
        let mut b: Vec<u64> = a[..a.len() - removed_count.min(a.len())].to_vec();
        for x in &added {
            if !base.contains(x) {
                b.push(*x);
            }
        }
        let truth = symmetric_difference(&a, &b);
        let pbs = Pbs::new(PbsConfig::paper_default().unlimited_rounds());
        let report = pbs.reconcile_with_known_d(&a, &b, d_guess, seed);
        prop_assert!(report.outcome.claimed_success);
        prop_assert!(report.outcome.matches(&truth));
    }

    /// The syndrome sketch is linear: decoding the combination of two sets'
    /// sketches yields exactly their symmetric difference whenever it fits.
    /// The capacity is set to the largest possible difference (both sets
    /// disjoint), so the decode below must always succeed.
    #[test]
    fn sketch_linearity(
        a in hash_set(1u64..2047, 0..40),
        b in hash_set(1u64..2047, 0..40),
    ) {
        let codec = BchCodec::new(11, 80);
        let sa = codec.sketch_set(a.iter().copied());
        let sb = codec.sketch_set(b.iter().copied());
        let mut d = sa.clone();
        d.combine(&sb);
        let mut decoded = codec.decode(&d).unwrap();
        decoded.sort_unstable();
        let mut expected: Vec<u64> = a.symmetric_difference(&b).copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(decoded, expected);
    }

    /// IBLT peeling, when it reports completeness, reports exactly the
    /// difference and never a superset or subset of it.
    #[test]
    fn iblt_peel_is_exact_when_complete(
        a in hash_set(1u64..u64::MAX, 0..150),
        b in hash_set(1u64..u64::MAX, 0..150),
        seed in any::<u64>(),
    ) {
        let mut ta = Iblt::new(600, 3, seed);
        let mut tb = Iblt::new(600, 3, seed);
        ta.insert_all(a.iter().copied());
        tb.insert_all(b.iter().copied());
        let peel = Iblt::diff_and_peel(&ta, &tb);
        if peel.complete {
            let mut got: Vec<u64> = peel.all().collect();
            got.sort_unstable();
            let mut expected: Vec<u64> = a.symmetric_difference(&b).copied().collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }

    /// The recovered difference reported by PBS is itself a set (no
    /// duplicates) and every reported element belongs to exactly one side.
    #[test]
    fn pbs_output_is_a_clean_set(
        base in hash_set(1u64..0xFFFF_FFFF, 100..300),
        removed in 1usize..30,
        seed in any::<u64>(),
    ) {
        let a: Vec<u64> = base.iter().copied().collect();
        let b: Vec<u64> = a[..a.len() - removed].to_vec();
        let pbs = Pbs::new(PbsConfig::paper_default().unlimited_rounds());
        let report = pbs.reconcile_with_known_d(&a, &b, removed, seed);
        let mut seen = std::collections::HashSet::new();
        for &x in &report.outcome.recovered {
            prop_assert!(seen.insert(x), "duplicate element {x} in the output");
            let in_a = base.contains(&x);
            let in_b = b.contains(&x);
            prop_assert!(in_a ^ in_b, "{x} is not a one-sided element");
        }
    }
}
